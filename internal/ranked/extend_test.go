package ranked

import (
	"context"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/testutil"
	"markovseq/internal/transducer"
)

// assertRankedPrefixMatches compares a k-answer drain of the carried
// enumerator against a from-scratch enumeration of the same input. The
// contract is exact modulo ties: rank-by-rank scores must be
// bit-identical, and within every maximal run of equal scores the
// answer sets must agree — where scores strictly decrease this forces
// byte-identical outputs at every rank. Order inside a tied class is
// construction-dependent by design: a from-scratch drain discovers some
// tied answers only as children of emitted tied parents, while the
// reseeded drain holds them all up front, and forcing one canonical
// global tie order would require eagerly resolving every bound-tied
// child before each emission (abandoning lazy Murty resolution). The
// fresh enumerator is drained past k through the last tied class so a
// k-boundary that splits a class compares against the full class.
func assertRankedPrefixMatches(t *testing.T, label string, got []Answer, fresh *Enumerator, k int) {
	t.Helper()
	want := drainAnswers(fresh.Next, k)
	if len(want) > 0 {
		last := want[len(want)-1].LogEmax
		for {
			a, ok := fresh.Next()
			if !ok || a.LogEmax != last {
				break
			}
			want = append(want, a)
		}
	}
	if len(got) != k && len(got) != len(want) {
		t.Fatalf("%s: got %d answers, want %d (k=%d)", label, len(got), len(want), k)
	}
	for i := range got {
		if got[i].LogEmax != want[i].LogEmax {
			t.Fatalf("%s rank %d: score %v, want %v (must be bit-identical)",
				label, i, got[i].LogEmax, want[i].LogEmax)
		}
	}
	// Tie-class set comparison: every got answer must appear in the fresh
	// class with its score, and any class got fully contains must match
	// the fresh class size (the final, possibly k-truncated class is
	// subset-only).
	wantByScore := map[float64]map[string]bool{}
	for _, a := range want {
		m := wantByScore[a.LogEmax]
		if m == nil {
			m = map[string]bool{}
			wantByScore[a.LogEmax] = m
		}
		m[automata.StringKey(a.Output)] = true
	}
	gotClass := map[float64]int{}
	for i, a := range got {
		if !wantByScore[a.LogEmax][automata.StringKey(a.Output)] {
			t.Fatalf("%s rank %d: output %v (score %v) not among the from-scratch answers of that score",
				label, i, a.Output, a.LogEmax)
		}
		gotClass[a.LogEmax]++
	}
	if len(got) > 0 {
		lastScore := got[len(got)-1].LogEmax
		for s, n := range gotClass {
			if s != lastScore && n != len(wantByScore[s]) {
				t.Fatalf("%s: tie class at score %v has %d answers in the carried drain, %d from scratch",
					label, s, n, len(wantByScore[s]))
			}
		}
	}
}

// growBy appends the transition matrices full.TransAt(from..from+cnt-1)
// to grown, one event at a time (the AppendEvents idiom).
func growBy(t *testing.T, grown, full *markov.Sequence, from, cnt int) *markov.Sequence {
	t.Helper()
	for i := from; i < from+cnt; i++ {
		var err error
		grown, err = grown.Extended([][][]float64{full.TransAt(i)})
		if err != nil {
			t.Fatalf("extend at %d: %v", i, err)
		}
	}
	return grown
}

// TestExtendEnumeratorMatchesFresh is the core differential contract of
// the incremental ranked reseed: after any number of appends, a carried
// enumerator (ExtendEnumerator) emits bit-identical scores rank by rank
// and the same answers (set-identical per tied score class, exact order
// where scores strictly decrease) as a from-scratch enumerator over the
// grown sequence, across random instances, epochs, drain depths, and
// worker counts.
func TestExtendEnumeratorMatchesFresh(t *testing.T) {
	testutil.CheckLeaks(t)
	in := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(91100 + trial)))
		n := 8 + rng.Intn(6)
		full := markov.Random(in, n, 0.6, rng)
		tr := randomNDTransducer(in, out, 1+rng.Intn(3), rng)
		p := 3 + rng.Intn(3)
		grown := full.Window(1, p)

		workers := []int{1, 3}[rng.Intn(2)]
		ev := NewEvaluator(tr, grown, WithExtendable())
		e := ev.Enumerate(workers)
		lastCount := len(drainAnswers(e.Next, 5))
		if lastCount == 0 {
			continue // empty language: nothing to carry, fresh path covers it
		}
		for epoch := 0; p < n; epoch++ {
			step := 1 + rng.Intn(3)
			if p+step > n {
				step = n - p
			}
			grown = growBy(t, grown, full, p, step)
			p += step
			ne, ok := ExtendEnumerator(e, grown, workers)
			if !ok {
				// Refusal is only legitimate when the last drain emitted
				// nothing (the grown language went empty mid-stream);
				// production then falls back to a fresh extendable build.
				if lastCount > 0 {
					t.Fatalf("trial %d epoch %d: ExtendEnumerator refused a drained extendable enumerator", trial, epoch)
				}
				ne = NewEvaluator(tr, grown, WithExtendable()).Enumerate(workers)
			}
			e = ne
			k := 1 + rng.Intn(8)
			got := drainAnswers(e.Next, k)
			assertRankedPrefixMatches(t, "extend vs fresh", got, NewEnumerator(tr, grown), k)
			lastCount = len(got)
		}
	}
}

// TestExtendEnumeratorApplicationWorkloads runs the same differential on
// the RFID and textgen serving workloads with k ∈ {1, 10} across
// repeated appends.
func TestExtendEnumeratorApplicationWorkloads(t *testing.T) {
	testutil.CheckLeaks(t)
	type workload struct {
		name string
		t    *transducer.Transducer
		m    *markov.Sequence
	}
	var ws []workload
	{
		tr, m := rfidRankedWorkload(t, 40)
		ws = append(ws, workload{"rfid", tr, m})
	}
	{
		tr, m := textgenRankedWorkload(t)
		ws = append(ws, workload{"textgen", tr, m})
	}
	for _, w := range ws {
		for _, k := range []int{1, 10} {
			n := w.m.Len()
			p := n - 7
			grown := w.m.Window(1, p)
			ev := NewEvaluator(w.t, grown, WithExtendable())
			e := ev.Enumerate(2)
			drainAnswers(e.Next, k)
			for p < n {
				step := 2
				if p+step > n {
					step = n - p
				}
				grown = growBy(t, grown, w.m, p, step)
				p += step
				ne, ok := ExtendEnumerator(e, grown, 2)
				if !ok {
					t.Fatalf("%s k=%d: extension refused", w.name, k)
				}
				e = ne
				got := drainAnswers(e.Next, k)
				assertRankedPrefixMatches(t, w.name+" extend", got, NewEnumerator(w.t, grown), k)
			}
			reused, reseeded, _ := e.ExtendStats()
			if reused == 0 {
				t.Fatalf("%s k=%d: no answers reused across %d-event growth (reseeded=%d)", w.name, k, 7, reseeded)
			}
		}
	}
}

// TestExtendEnumeratorCancelResume pauses a drain mid-flight with a
// cancelled context, extends across the pause, and requires the carried
// enumerator to agree with a fresh one — cancellation must leave the
// retained tree in a carriable state.
func TestExtendEnumeratorCancelResume(t *testing.T) {
	testutil.CheckLeaks(t)
	tr, full := rfidRankedWorkload(t, 40)
	n := full.Len()
	p := n - 4
	grown := full.Window(1, p)
	ev := NewEvaluator(tr, grown, WithExtendable())
	e := ev.Enumerate(2)
	if _, err := drainCtx(context.Background(), e, 4); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.NextCtx(ctx); err == nil {
		t.Fatal("cancelled NextCtx did not report the cancellation")
	}
	grown = growBy(t, grown, full, p, 4)
	ne, ok := ExtendEnumerator(e, grown, 2)
	if !ok {
		t.Fatal("extension refused after cancelled drain")
	}
	got := drainAnswers(ne.Next, 10)
	assertRankedPrefixMatches(t, "cancel-extend-resume", got, NewEnumerator(tr, grown), 10)
}

// TestExtendEnumeratorRefusals pins the fallback contract: nil,
// non-extendable, and undrained enumerators are not carried.
func TestExtendEnumeratorRefusals(t *testing.T) {
	tr, full := rfidRankedWorkload(t, 20)
	grown := full.Window(1, 16)
	if _, ok := ExtendEnumerator(nil, full, 1); ok {
		t.Fatal("nil enumerator carried")
	}
	plain := NewEnumerator(tr, grown)
	drainAnswers(plain.Next, 3)
	if _, ok := ExtendEnumerator(plain, full, 1); ok {
		t.Fatal("non-extendable enumerator carried")
	}
	fresh := NewEvaluator(tr, grown, WithExtendable()).Enumerate(1)
	if _, ok := ExtendEnumerator(fresh, full, 1); ok {
		t.Fatal("undrained enumerator carried — nothing resolved is worth carrying")
	}
}
