// Delay-focused benchmarks for the ranked enumeration (Theorem 4.3),
// feeding `make bench` / BENCH_ranked.json: top-k wall time,
// time-to-first-answer, and per-answer delay percentiles, each on the
// RFID and textgen application workloads, with three resolution paths:
//
//   - reference:   the pre-incremental loop (legacy.go) — materializes
//     the constrained product and re-runs Viterbi from position 0 for
//     every Lawler resolution;
//   - incremental: the constraint-incremental kernel with prefix
//     checkpointing (sequential);
//   - parallel:    the same plus speculative resolution across
//     GOMAXPROCS workers (bit-identical answer sequence).
//
// The smoke test at the bottom pins the acceptance property: all three
// paths emit the same top-k sequence on the benchmark workloads.
package ranked

import (
	"runtime"
	"sort"
	"testing"
	"time"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/transducer"
)

const benchTopK = 10

// rankedBenchPaths names the three resolution paths and how to build an
// iterator for each; the evaluator (tables + checkpoint cache) is
// rebuilt per iteration so every iteration pays the full serving cost.
func rankedBenchPaths(tr *transducer.Transducer, m *markov.Sequence) []struct {
	name string
	iter func() func() (Answer, bool)
} {
	// On a single-core host the speculative path still runs (workers ≥ 2
	// exercises the concurrent resolver and coalesced checkpoint builds)
	// but cannot beat sequential wall-clock; the speedup column is only
	// meaningful with GOMAXPROCS > 1.
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	return []struct {
		name string
		iter func() func() (Answer, bool)
	}{
		{"reference", func() func() (Answer, bool) { return NewReferenceEnumerator(tr, m).Next }},
		{"incremental", func() func() (Answer, bool) { return NewEnumerator(tr, m).Next }},
		{"parallel", func() func() (Answer, bool) { return NewEnumerator(tr, m, WithWorkers(workers)).Next }},
	}
}

func benchRankedTopK(b *testing.B, tr *transducer.Transducer, m *markov.Sequence) {
	for _, p := range rankedBenchPaths(tr, m) {
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				next := p.iter()
				for j := 0; j < benchTopK; j++ {
					if _, ok := next(); !ok {
						break
					}
				}
			}
		})
	}
}

// benchRankedDelay measures the per-answer delay distribution over a
// top-k drain: ns/op is the whole drain, and the p50/max per-answer
// delays (including the first answer, i.e. TTFA) are reported as extra
// metrics across all iterations.
func benchRankedDelay(b *testing.B, tr *transducer.Transducer, m *markov.Sequence) {
	for _, p := range rankedBenchPaths(tr, m) {
		b.Run(p.name, func(b *testing.B) {
			delays := make([]float64, 0, benchTopK*b.N)
			var ttfa []float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := p.iter()
				prev := time.Now()
				for j := 0; j < benchTopK; j++ {
					if _, ok := next(); !ok {
						break
					}
					now := time.Now()
					d := float64(now.Sub(prev))
					delays = append(delays, d)
					if j == 0 {
						ttfa = append(ttfa, d)
					}
					prev = now
				}
			}
			b.StopTimer()
			if len(delays) == 0 {
				b.Fatal("no answers")
			}
			sort.Float64s(delays)
			sort.Float64s(ttfa)
			b.ReportMetric(delays[len(delays)/2], "p50-delay-ns/answer")
			b.ReportMetric(delays[len(delays)-1], "max-delay-ns/answer")
			b.ReportMetric(ttfa[len(ttfa)/2], "ttfa-ns")
		})
	}
}

func BenchmarkRankedTopKRFID(b *testing.B) {
	tr, m := rfidRankedWorkload(b, 200)
	benchRankedTopK(b, tr, m)
}

func BenchmarkRankedTopKTextgen(b *testing.B) {
	tr, m := textgenRankedWorkload(b)
	benchRankedTopK(b, tr, m)
}

func BenchmarkRankedDelayRFID(b *testing.B) {
	tr, m := rfidRankedWorkload(b, 200)
	benchRankedDelay(b, tr, m)
}

func BenchmarkRankedDelayTextgen(b *testing.B) {
	tr, m := textgenRankedWorkload(b)
	benchRankedDelay(b, tr, m)
}

// TestRankedBenchWorkloadsSmoke runs the benchmark workloads once under
// plain `go test` and pins the acceptance property: on the top-k drain
// (k = benchTopK, RFID n = 200 and textgen), the parallel path is
// byte-identical to the sequential one, and the incremental path
// matches the pre-incremental reference rank by rank — bit-equal scores
// and, within each maximal group of exactly tied scores, the same set
// of outputs. (The RFID workload has structurally symmetric paths with
// bit-identical probabilities; inside such a tie group the reference
// heap's order is arbitrary, so set equality is the strongest property
// that is well-defined across implementations.)
func TestRankedBenchWorkloadsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark workload smoke is not short")
	}
	run := func(name string, tr *transducer.Transducer, m *markov.Sequence) {
		ref := drainAnswers(NewReferenceEnumerator(tr, m).Next, benchTopK)
		inc := drainAnswers(NewEnumerator(tr, m).Next, benchTopK)
		par := drainAnswers(NewEnumerator(tr, m, WithWorkers(4)).Next, benchTopK)
		assertSameAnswerSequence(t, name+"/parallel-vs-sequential", par, inc)
		if len(inc) != len(ref) {
			t.Fatalf("%s: incremental %d answers, reference %d", name, len(inc), len(ref))
		}
		for i := range ref {
			if inc[i].LogEmax != ref[i].LogEmax {
				t.Fatalf("%s rank %d: score %v, reference %v (must be bit-identical)",
					name, i, inc[i].LogEmax, ref[i].LogEmax)
			}
		}
		for lo := 0; lo < len(ref); {
			hi := lo + 1
			for hi < len(ref) && ref[hi].LogEmax == ref[lo].LogEmax {
				hi++
			}
			group := map[string]int{}
			for i := lo; i < hi; i++ {
				group[automata.StringKey(ref[i].Output)]++
				group[automata.StringKey(inc[i].Output)]--
			}
			for _, d := range group {
				if d != 0 {
					t.Fatalf("%s: tie group ranks [%d,%d) has different outputs than reference", name, lo, hi)
				}
			}
			lo = hi
		}
	}
	{
		tr, m := rfidRankedWorkload(t, 200)
		run("rfid", tr, m)
	}
	{
		tr, m := textgenRankedWorkload(t)
		run("textgen", tr, m)
	}
}
