// Sparse-vs-dense Viterbi benchmark pair (the E_max inner loop of both
// TopEmax and the Lawler–Murty enumerator), feeding `make bench`.
package ranked

import (
	"math"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/transducer"
)

// viterbiBenchWorkload is a 50-position random sequence over 4 nodes
// with a total 3-state nondeterministic transducer.
func viterbiBenchWorkload(tb testing.TB) (*transducer.Transducer, *markov.Sequence) {
	tb.Helper()
	rng := rand.New(rand.NewSource(17))
	in := automata.MustAlphabet("a", "b", "c", "d")
	out := automata.MustAlphabet("x", "y")
	tr := transducer.New(in, out, 3, 0)
	for q := 0; q < 3; q++ {
		tr.SetAccepting(q, true)
		for _, s := range in.Symbols() {
			n := 0
			for q2 := 0; q2 < 3; q2++ {
				if rng.Intn(2) == 0 {
					continue
				}
				var e []automata.Symbol
				if rng.Intn(2) == 0 {
					e = []automata.Symbol{automata.Symbol(rng.Intn(2))}
				}
				tr.AddTransition(q, s, q2, e)
				n++
			}
			if n == 0 {
				tr.AddTransition(q, s, rng.Intn(3), nil)
			}
		}
	}
	return tr, markov.Random(in, 50, 0.6, rng)
}

func BenchmarkKernelViterbi(b *testing.B) {
	tr, m := viterbiBenchWorkload(b)
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, ok := viterbiRun(tr, m); !ok {
				b.Fatal("no accepting run")
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, ok := viterbiRunDense(tr, m); !ok {
				b.Fatal("no accepting run")
			}
		}
	})
}

// TestViterbiBenchWorkloadSmoke keeps the benchmark workload honest
// under plain `go test`: both implementations agree on the optimum.
func TestViterbiBenchWorkloadSmoke(t *testing.T) {
	tr, m := viterbiBenchWorkload(t)
	_, _, lp, ok := viterbiRun(tr, m)
	_, _, lpD, okD := viterbiRunDense(tr, m)
	if !ok || !okD {
		t.Fatalf("ok=%v dense ok=%v", ok, okD)
	}
	if math.Abs(lp-lpD) > 1e-9 {
		t.Fatalf("sparse logp %v vs dense %v", lp, lpD)
	}
}
