package ranked

import (
	"math"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/testutil"
	"markovseq/internal/transducer"
)

// drainAnswers pulls up to k answers (k ≤ 0 means all).
func drainAnswers(next func() (Answer, bool), k int) []Answer {
	var out []Answer
	for k <= 0 || len(out) < k {
		a, ok := next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

// TestEnumeratorMatchesReference differentially tests the
// constraint-incremental enumerator against the product-materializing
// reference loop (legacy.go): same answer set, same per-rank scores.
// When the score sequence is strictly decreasing the orders must match
// exactly (on ties the two heaps may legitimately break differently).
func TestEnumeratorMatchesReference(t *testing.T) {
	in := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		m := markov.Random(in, 2+rng.Intn(4), 0.6, rng)
		tr := randomNDTransducer(in, out, 1+rng.Intn(3), rng)
		inc := NewEnumerator(tr, m)
		ref := NewReferenceEnumerator(tr, m)
		got := drainAnswers(inc.Next, -1)
		want := drainAnswers(ref.Next, -1)
		if len(got) != len(want) {
			t.Fatalf("trial %d: incremental %d answers, reference %d", trial, len(got), len(want))
		}
		strict := true
		for i := range want {
			if math.Abs(got[i].LogEmax-want[i].LogEmax) > 1e-9 {
				t.Fatalf("trial %d rank %d: score %v vs reference %v", trial, i, got[i].LogEmax, want[i].LogEmax)
			}
			if i > 0 && want[i].LogEmax >= want[i-1].LogEmax-1e-12 {
				strict = false
			}
		}
		gotSet, wantSet := map[string]bool{}, map[string]bool{}
		for i := range want {
			gotSet[automata.StringKey(got[i].Output)] = true
			wantSet[automata.StringKey(want[i].Output)] = true
		}
		for k := range wantSet {
			if !gotSet[k] {
				t.Fatalf("trial %d: reference answer missing from incremental enumeration", trial)
			}
		}
		if strict {
			for i := range want {
				if !automata.EqualStrings(got[i].Output, want[i].Output) {
					t.Fatalf("trial %d rank %d: output %v vs reference %v",
						trial, i, got[i].Output, want[i].Output)
				}
			}
		}
	}
}

// assertSameAnswerSequence requires byte-identical outputs and exactly
// equal scores, rank by rank.
func assertSameAnswerSequence(t *testing.T, label string, got, want []Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d answers, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !automata.EqualStrings(got[i].Output, want[i].Output) {
			t.Fatalf("%s rank %d: output %v, want %v", label, i, got[i].Output, want[i].Output)
		}
		if got[i].LogEmax != want[i].LogEmax {
			t.Fatalf("%s rank %d: score %v, want %v (must be bit-identical)",
				label, i, got[i].LogEmax, want[i].LogEmax)
		}
	}
}

// TestParallelMatchesSequentialExactly is the determinism guarantee of
// the speculative resolver: for every worker count the emitted sequence
// — outputs and scores — is bit-identical to the sequential enumerator,
// on the RFID and textgen application workloads and on random
// instances. Run under -race this also exercises the concurrent
// checkpoint-cache and resolver paths.
func TestParallelMatchesSequentialExactly(t *testing.T) {
	testutil.CheckLeaks(t)
	type workload struct {
		name string
		t    *transducer.Transducer
		m    *markov.Sequence
		k    int
	}
	var ws []workload
	{
		tr, m := rfidRankedWorkload(t, 60)
		ws = append(ws, workload{"rfid", tr, m, 40})
	}
	{
		tr, m := textgenRankedWorkload(t)
		ws = append(ws, workload{"textgen", tr, m, 40})
	}
	in := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(8100 + trial)))
		m := markov.Random(in, 2+rng.Intn(4), 0.6, rng)
		ws = append(ws, workload{"random", randomNDTransducer(in, out, 1+rng.Intn(3), rng), m, -1})
	}
	for _, w := range ws {
		seq := drainAnswers(NewEnumerator(w.t, w.m).Next, w.k)
		for _, workers := range []int{2, 4, 8} {
			par := drainAnswers(NewEnumerator(w.t, w.m, WithWorkers(workers)).Next, w.k)
			assertSameAnswerSequence(t, w.name, par, seq)
		}
	}
}

// TestEvaluatorMatchesOneShot checks that the evaluator's amortized
// per-answer calls (satellite of the checkpoint cache) agree with the
// one-shot functions: Emax scores match exactly and BestEvidence
// returns a witness of the same probability.
func TestEvaluatorMatchesOneShot(t *testing.T) {
	tr, m := textgenRankedWorkload(t)
	ev := NewEvaluator(tr, m)
	answers := drainAnswers(ev.Enumerate(1).Next, 25)
	if len(answers) == 0 {
		t.Fatal("workload has no answers")
	}
	for _, a := range answers {
		if got := ev.Emax(a.Output); got != a.LogEmax {
			t.Fatalf("Emax(%v) = %v, enumerator said %v", a.Output, got, a.LogEmax)
		}
		if oneShot := Emax(tr, m, a.Output); oneShot != a.LogEmax {
			t.Fatalf("one-shot Emax(%v) = %v, enumerator said %v", a.Output, oneShot, a.LogEmax)
		}
		evid, lp, ok := ev.BestEvidence(a.Output)
		if !ok {
			t.Fatalf("BestEvidence(%v) found nothing", a.Output)
		}
		if lp != a.LogEmax {
			t.Fatalf("BestEvidence(%v) probability %v, want %v", a.Output, lp, a.LogEmax)
		}
		if got := m.LogProb(evid); math.Abs(got-lp) > 1e-9 {
			t.Fatalf("evidence of %v has logprob %v, claimed %v", a.Output, got, lp)
		}
	}
}
