package ranked

import (
	"math"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/paperex"
	"markovseq/internal/transducer"
)

// bruteEmax computes E_max for every answer by possible-worlds enumeration.
func bruteEmax(t *transducer.Transducer, m *markov.Sequence) map[string]float64 {
	out := map[string]float64{}
	m.Enumerate(func(s []automata.Symbol, p float64) bool {
		for _, o := range t.Transduce(s, 0) {
			k := automata.StringKey(o)
			if p > out[k] {
				out[k] = p
			}
		}
		return true
	})
	return out
}

func TestExample42Emax(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	tr := paperex.Figure2(nodes, outs)
	got := math.Exp(Emax(tr, m, outs.MustParseString("1 2")))
	if math.Abs(got-paperex.Emax12) > 1e-9 {
		t.Fatalf("E_max(12) = %v, want %v", got, paperex.Emax12)
	}
	// The best evidence of 12 is the string s of Table 1.
	ev, lp, ok := BestEvidence(tr, m, outs.MustParseString("1 2"))
	if !ok {
		t.Fatal("12 should have an evidence")
	}
	if want := nodes.MustParseString("r1a la la r1a r2a"); !automata.EqualStrings(ev, want) {
		t.Fatalf("best evidence = %v, want s", nodes.FormatString(ev))
	}
	if math.Abs(math.Exp(lp)-paperex.Emax12) > 1e-9 {
		t.Fatalf("best evidence probability = %v", math.Exp(lp))
	}
}

func TestTopEmaxRunningExample(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	tr := paperex.Figure2(nodes, outs)
	o, lp, ok := TopEmax(tr, m, transducer.Unconstrained())
	if !ok {
		t.Fatal("answers exist")
	}
	// The most probable accepted world is s (0.3969), whose output is 12.
	if !automata.EqualStrings(o, outs.MustParseString("1 2")) {
		t.Fatalf("top answer = %v, want 12", outs.FormatString(o))
	}
	if math.Abs(math.Exp(lp)-0.3969) > 1e-9 {
		t.Fatalf("top E_max = %v, want 0.3969", math.Exp(lp))
	}
}

func randomNDTransducer(in, out *automata.Alphabet, nStates int, rng *rand.Rand) *transducer.Transducer {
	tr := transducer.New(in, out, nStates, 0)
	for q := 0; q < nStates; q++ {
		tr.SetAccepting(q, rng.Intn(2) == 0)
		for _, s := range in.Symbols() {
			for q2 := 0; q2 < nStates; q2++ {
				if rng.Intn(3) != 0 {
					continue
				}
				var e []automata.Symbol
				for l := rng.Intn(3); l > 0; l-- {
					e = append(e, automata.Symbol(rng.Intn(out.Size())))
				}
				tr.AddTransition(q, s, q2, e)
			}
		}
	}
	return tr
}

// TestEnumerationOrderAndCompleteness is the core Theorem 4.3 property
// test: the enumerator yields exactly the brute-force answer set, each
// once, in non-increasing E_max, with correct E_max values.
func TestEnumerationOrderAndCompleteness(t *testing.T) {
	in := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		m := markov.Random(in, 2+rng.Intn(3), 0.6, rng)
		tr := randomNDTransducer(in, out, 1+rng.Intn(3), rng)
		want := bruteEmax(tr, m)
		e := NewEnumerator(tr, m)
		seen := map[string]bool{}
		prev := math.Inf(1)
		for {
			a, ok := e.Next()
			if !ok {
				break
			}
			k := automata.StringKey(a.Output)
			if seen[k] {
				t.Fatalf("trial %d: duplicate answer %v", trial, a.Output)
			}
			seen[k] = true
			wantE, isAnswer := want[k]
			if !isAnswer {
				t.Fatalf("trial %d: spurious answer %v", trial, a.Output)
			}
			gotE := math.Exp(a.LogEmax)
			if math.Abs(gotE-wantE) > 1e-9 {
				t.Fatalf("trial %d: E_max(%v) = %v, want %v", trial, a.Output, gotE, wantE)
			}
			if gotE > prev+1e-9 {
				t.Fatalf("trial %d: enumeration not in decreasing E_max (%v after %v)", trial, gotE, prev)
			}
			prev = gotE
		}
		if len(seen) != len(want) {
			t.Fatalf("trial %d: enumerated %d answers, want %d", trial, len(seen), len(want))
		}
	}
}

func TestRunningExampleRankedOrder(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	tr := paperex.Figure2(nodes, outs)
	e := NewEnumerator(tr, m)
	var order []string
	for {
		a, ok := e.Next()
		if !ok {
			break
		}
		order = append(order, outs.FormatString(a.Output))
	}
	if len(order) == 0 || order[0] != "12" {
		t.Fatalf("first answer should be 12 (E_max 0.3969), got %v", order)
	}
	// ε has best evidence r1b lb lb lb lb with probability 0.2: second.
	if order[1] != "ε" {
		t.Fatalf("second answer should be ε, got %v", order)
	}
}

func TestEmaxOfNonAnswer(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	tr := paperex.Figure2(nodes, outs)
	if lp := Emax(tr, m, outs.MustParseString("λ λ λ")); !math.IsInf(lp, -1) {
		t.Fatalf("E_max of a non-answer should be -Inf, got %v", lp)
	}
}

// TestLongSequenceLogSpace: at n = 2000 every world probability
// underflows float64, but the log-space Viterbi still ranks answers
// (ablation A3).
func TestLongSequenceLogSpace(t *testing.T) {
	in := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x")
	rng := rand.New(rand.NewSource(9))
	m := markov.Random(in, 2000, 1.0, rng)
	tr := transducer.New(in, out, 1, 0)
	tr.SetAccepting(0, true)
	x := []automata.Symbol{out.MustSymbol("x")}
	tr.AddTransition(0, in.MustSymbol("a"), 0, x)
	tr.AddTransition(0, in.MustSymbol("b"), 0, nil)
	o, lp, ok := TopEmax(tr, m, transducer.Unconstrained())
	if !ok {
		t.Fatal("top answer must exist")
	}
	if math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Fatalf("log score degenerate: %v", lp)
	}
	if lp > 0 {
		t.Fatalf("log probability positive: %v", lp)
	}
	// The linear-space probability would be exp(lp) == 0 exactly.
	if math.Exp(lp) != 0 {
		t.Skip("instance not extreme enough to underflow; still fine")
	}
	_ = o
}

// TestViterbiKernelMatchesDense differentially tests the sparse Viterbi
// kernel against the dense reference on random nondeterministic
// transducers: same optimum score, and the returned run must be a real
// run of that probability.
func TestViterbiKernelMatchesDense(t *testing.T) {
	in := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		m := markov.Random(in, 2+rng.Intn(5), 0.7, rng)
		tr := transducer.New(in, out, 1+rng.Intn(3), 0)
		for q := 0; q < tr.NumStates(); q++ {
			tr.SetAccepting(q, rng.Intn(2) == 0)
			for _, s := range in.Symbols() {
				for q2 := 0; q2 < tr.NumStates(); q2++ {
					if rng.Intn(3) != 0 {
						continue
					}
					var e []automata.Symbol
					for l := rng.Intn(2); l > 0; l-- {
						e = append(e, automata.Symbol(rng.Intn(out.Size())))
					}
					tr.AddTransition(q, s, q2, e)
				}
			}
		}
		nodes, _, lp, ok := viterbiRun(tr, m)
		nodesD, _, lpD, okD := viterbiRunDense(tr, m)
		if ok != okD {
			t.Fatalf("trial %d: sparse ok=%v dense ok=%v", trial, ok, okD)
		}
		if !ok {
			continue
		}
		if math.Abs(lp-lpD) > 1e-9 {
			t.Fatalf("trial %d: sparse logp %v vs dense %v", trial, lp, lpD)
		}
		// The returned evidence must have exactly the claimed probability
		// (ties may pick different argmax runs, so compare scores, not paths).
		if got := m.LogProb(nodes); math.Abs(got-lp) > 1e-9 {
			t.Fatalf("trial %d: kernel run has logprob %v, claimed %v", trial, got, lp)
		}
		if got := m.LogProb(nodesD); math.Abs(got-lpD) > 1e-9 {
			t.Fatalf("trial %d: dense run has logprob %v, claimed %v", trial, got, lpD)
		}
	}
}
