// Package ranked implements the ranked-enumeration results of Section 4.2
// of Kimelfeld & Ré (PODS 2010):
//
//   - TopEmax finds an answer maximizing E_max (the probability of the
//     best evidence) under an output prefix constraint, by a Viterbi-style
//     dynamic program over the product of the constrained transducer and
//     the Markov sequence.
//
//   - Enumerator yields A^ω(μ) in decreasing E_max with polynomial delay
//     (Theorem 4.3), via the Lawler–Murty technique: the answer space is
//     recursively partitioned with prefix constraints, and each part's top
//     answer is obtained from TopEmax.
//
// Probabilities are handled in log space, so long Markov sequences do not
// underflow (see DESIGN.md ablation A3).
package ranked

import (
	"container/heap"
	"math"

	"markovseq/internal/automata"
	"markovseq/internal/kernel"
	"markovseq/internal/markov"
	"markovseq/internal/transducer"
)

// TopEmax returns an answer o of the transducer over μ with maximal
// E_max(o) among the answers satisfying the constraint, together with
// log E_max(o). ok is false when no answer satisfies the constraint.
//
// Correctness: the maximum-probability accepting evidence s* yields an
// answer o* with E_max(o*) = Pr(s*) ≥ E_max(o) for every other answer o,
// and constraining the transducer preserves this argument within the
// constrained answer set.
func TopEmax(t *transducer.Transducer, m *markov.Sequence, c transducer.Constraint) (o []automata.Symbol, logE float64, ok bool) {
	ct := t.Constrain(c)
	return viterbi(ct, m)
}

// viterbiRun finds the maximum-probability accepting run of the transducer
// over μ, returning the evidence node string, the visited states, and the
// log probability. ok is false when no accepting run over a
// positive-probability world exists. It runs the sparse frontier kernel:
// flat transducer tables, CSR transitions with precomputed logs, and
// double-buffered score buffers (viterbiRunDense is the reference
// implementation the kernel is differentially tested against).
func viterbiRun(t *transducer.Transducer, m *markov.Sequence) (nodes []automata.Symbol, states []int, logp float64, ok bool) {
	return kernel.ViterbiRun(kernel.NewNFATables(t), m.View(), nil)
}

// viterbiRunDense is the dense reference implementation of viterbiRun,
// scanning every (node, state) cell per position.
func viterbiRunDense(t *transducer.Transducer, m *markov.Sequence) (nodes []automata.Symbol, states []int, logp float64, ok bool) {
	n := m.Len()
	nNodes := m.Nodes.Size()
	nStates := t.NumStates()
	negInf := math.Inf(-1)

	type bp struct{ x, q int }
	// score[x][q] = max log prob of s[1..i] ending at node x in state q.
	score := make([][]float64, nNodes)
	back := make([][][]bp, n) // back[i][x][q]
	for i := range back {
		back[i] = make([][]bp, nNodes)
		for x := range back[i] {
			back[i][x] = make([]bp, nStates)
		}
	}
	for x := range score {
		score[x] = make([]float64, nStates)
		for q := range score[x] {
			score[x][q] = negInf
		}
	}
	for x := 0; x < nNodes; x++ {
		p := m.Initial[x]
		if p == 0 {
			continue
		}
		for _, q2 := range t.Succ(t.Start(), automata.Symbol(x)) {
			lp := math.Log(p)
			if lp > score[x][q2] {
				score[x][q2] = lp
				back[0][x][q2] = bp{-1, t.Start()}
			}
		}
	}
	for i := 1; i < n; i++ {
		next := make([][]float64, nNodes)
		for x := range next {
			next[x] = make([]float64, nStates)
			for q := range next[x] {
				next[x][q] = negInf
			}
		}
		tr := m.Trans[i-1]
		for x := 0; x < nNodes; x++ {
			for q := 0; q < nStates; q++ {
				base := score[x][q]
				if base == negInf {
					continue
				}
				for y := 0; y < nNodes; y++ {
					p := tr[x][y]
					if p == 0 {
						continue
					}
					lp := base + math.Log(p)
					for _, q2 := range t.Succ(q, automata.Symbol(y)) {
						if lp > next[y][q2] {
							next[y][q2] = lp
							back[i][y][q2] = bp{x, q}
						}
					}
				}
			}
		}
		score = next
	}
	bestX, bestQ, best := -1, -1, negInf
	for x := 0; x < nNodes; x++ {
		for q := 0; q < nStates; q++ {
			if t.Accepting(q) && score[x][q] > best {
				best, bestX, bestQ = score[x][q], x, q
			}
		}
	}
	if bestX < 0 {
		return nil, nil, negInf, false
	}
	nodes = make([]automata.Symbol, n)
	states = make([]int, n)
	x, q := bestX, bestQ
	for i := n - 1; i >= 0; i-- {
		nodes[i] = automata.Symbol(x)
		states[i] = q
		prev := back[i][x][q]
		x, q = prev.x, prev.q
	}
	return nodes, states, best, true
}

// viterbi finds the maximum-probability accepting run and returns its
// emitted output with the log probability. The flat tables are built
// once and shared by the DP and the output reconstruction.
func viterbi(t *transducer.Transducer, m *markov.Sequence) ([]automata.Symbol, float64, bool) {
	nt := kernel.NewNFATables(t)
	nodes, states, lp, ok := kernel.ViterbiRun(nt, m.View(), nil)
	if !ok {
		return nil, lp, false
	}
	return nt.EmitRun(nodes, states), lp, true
}

// BestEvidence returns the maximum-probability possible world of μ that is
// transduced into answer o, together with its log probability — i.e. a
// witness of E_max(o) (Example 4.2). ok is false when o is not an answer.
func BestEvidence(t *transducer.Transducer, m *markov.Sequence, o []automata.Symbol) (s []automata.Symbol, logE float64, ok bool) {
	ct := t.Constrain(transducer.Constraint{Prefix: o, Mode: transducer.ExactOnly})
	nodes, _, lp, ok := viterbiRun(ct, m)
	return nodes, lp, ok
}

// Answer is an enumerated answer with its E_max score (in log space).
type Answer struct {
	Output  []automata.Symbol
	LogEmax float64
}

// Enumerator yields A^ω(μ) in decreasing E_max with polynomial delay
// (Theorem 4.3). Create with NewEnumerator and drain with Next.
type Enumerator struct {
	t     *transducer.Transducer
	m     *markov.Sequence
	queue lawlerQueue
}

type lawlerItem struct {
	constraint transducer.Constraint
	// resolved indicates top/logE hold the constraint's true best answer;
	// unresolved items carry the parent's score as an upper bound and are
	// resolved lazily when popped (Murty's optimization: since a child's
	// top cannot beat its parent's, deferring the Viterbi call preserves
	// the global order while skipping it entirely for children that never
	// reach the front of the queue).
	resolved bool
	top      []automata.Symbol
	logE     float64
}

type lawlerQueue []*lawlerItem

func (q lawlerQueue) Len() int           { return len(q) }
func (q lawlerQueue) Less(i, j int) bool { return q[i].logE > q[j].logE }
func (q lawlerQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *lawlerQueue) Push(x any)        { *q = append(*q, x.(*lawlerItem)) }
func (q *lawlerQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil // release the slot so long enumerations don't retain popped items
	*q = old[:n-1]
	return it
}

// NewEnumerator prepares the decreasing-E_max enumeration of the answers
// of t over m.
func NewEnumerator(t *transducer.Transducer, m *markov.Sequence) *Enumerator {
	e := &Enumerator{t: t, m: m}
	if top, logE, ok := TopEmax(t, m, transducer.Unconstrained()); ok {
		heap.Push(&e.queue, &lawlerItem{
			constraint: transducer.Unconstrained(),
			resolved:   true,
			top:        top,
			logE:       logE,
		})
	}
	return e
}

// Next returns the next answer in decreasing E_max, or ok=false when all
// answers have been enumerated. Each answer is produced exactly once: the
// Lawler children of a popped constraint partition its remaining answers.
func (e *Enumerator) Next() (Answer, bool) {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*lawlerItem)
		if !it.resolved {
			top, logE, ok := TopEmax(e.t, e.m, it.constraint)
			if !ok {
				continue // empty subproblem
			}
			it.resolved, it.top, it.logE = true, top, logE
			heap.Push(&e.queue, it)
			continue
		}
		for _, child := range it.constraint.Children(it.top) {
			// The child's best cannot exceed the parent's: use the
			// parent's score as an admissible upper bound.
			heap.Push(&e.queue, &lawlerItem{constraint: child, logE: it.logE})
		}
		return Answer{Output: it.top, LogEmax: it.logE}, true
	}
	return Answer{}, false
}

// Emax computes E_max(o) = max{Pr(s) : s →[A^ω]→ o} in log space, using
// the exact-output constraint and the Viterbi DP. It returns -Inf when o
// is not an answer.
func Emax(t *transducer.Transducer, m *markov.Sequence, o []automata.Symbol) float64 {
	_, lp, ok := TopEmax(t, m, transducer.Constraint{Prefix: o, Mode: transducer.ExactOnly})
	if !ok {
		return math.Inf(-1)
	}
	return lp
}
