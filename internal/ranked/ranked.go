// Package ranked implements the ranked-enumeration results of Section 4.2
// of Kimelfeld & Ré (PODS 2010):
//
//   - TopEmax finds an answer maximizing E_max (the probability of the
//     best evidence) under an output prefix constraint, by the
//     constraint-incremental Viterbi kernel: the constraint's zone
//     tracker is composed with the base transducer tables on the fly
//     (kernel.ConstrainedViterbi), with no per-call product transducer.
//
//   - Evaluator caches the base tables, the sequence view, and a bounded
//     LRU of prefix checkpoints for one (transducer, sequence) pair, so
//     repeated per-answer calls (Emax, BestEvidence) and the Lawler
//     children of each printed answer reuse the shared-prefix DP work.
//
//   - Enumerator yields A^ω(μ) in decreasing E_max with polynomial delay
//     (Theorem 4.3), via the generic Lawler–Murty core (internal/lawler):
//     the answer space is recursively partitioned with prefix
//     constraints, each part's top answer is resolved lazily against its
//     parent's checkpoint, and WithWorkers resolves the top unresolved
//     subproblems speculatively in parallel without changing the emitted
//     sequence. The pre-incremental product path is preserved in
//     legacy.go as the differential reference and benchmark baseline.
//
// Probabilities are handled in log space, so long Markov sequences do not
// underflow (see DESIGN.md ablation A3).
package ranked

import (
	"context"
	"math"
	"slices"

	"markovseq/internal/automata"
	"markovseq/internal/kernel"
	"markovseq/internal/lawler"
	"markovseq/internal/markov"
	"markovseq/internal/transducer"
)

// TopEmax returns an answer o of the transducer over μ with maximal
// E_max(o) among the answers satisfying the constraint, together with
// log E_max(o). ok is false when no answer satisfies the constraint.
//
// Correctness: the maximum-probability accepting evidence s* yields an
// answer o* with E_max(o*) = Pr(s*) ≥ E_max(o) for every other answer o,
// and restricting the DP to constraint-admissible outputs preserves this
// argument within the constrained answer set.
//
// This is the one-shot form (base tables are built per call); use an
// Evaluator to amortize tables and checkpoints across calls.
func TopEmax(t *transducer.Transducer, m *markov.Sequence, c transducer.Constraint) (o []automata.Symbol, logE float64, ok bool) {
	o, _, _, logE, ok = kernel.ConstrainedViterbi(kernel.NewNFATables(t), m.View(), c, nil)
	return o, logE, ok
}

// viterbiRun finds the maximum-probability accepting run of the transducer
// over μ, returning the evidence node string, the visited states, and the
// log probability. ok is false when no accepting run over a
// positive-probability world exists. It runs the sparse frontier kernel:
// flat transducer tables, CSR transitions with precomputed logs, and
// double-buffered score buffers (viterbiRunDense is the reference
// implementation the kernel is differentially tested against).
func viterbiRun(t *transducer.Transducer, m *markov.Sequence) (nodes []automata.Symbol, states []int, logp float64, ok bool) {
	return kernel.ViterbiRun(kernel.NewNFATables(t), m.View(), nil)
}

// viterbiRunDense is the dense reference implementation of viterbiRun,
// scanning every (node, state) cell per position.
func viterbiRunDense(t *transducer.Transducer, m *markov.Sequence) (nodes []automata.Symbol, states []int, logp float64, ok bool) {
	n := m.Len()
	nNodes := m.Nodes.Size()
	nStates := t.NumStates()
	negInf := math.Inf(-1)

	type bp struct{ x, q int }
	// score[x][q] = max log prob of s[1..i] ending at node x in state q.
	score := make([][]float64, nNodes)
	back := make([][][]bp, n) // back[i][x][q]
	for i := range back {
		back[i] = make([][]bp, nNodes)
		for x := range back[i] {
			back[i][x] = make([]bp, nStates)
		}
	}
	for x := range score {
		score[x] = make([]float64, nStates)
		for q := range score[x] {
			score[x][q] = negInf
		}
	}
	for x := 0; x < nNodes; x++ {
		p := m.Initial[x]
		if p == 0 {
			continue
		}
		for _, q2 := range t.Succ(t.Start(), automata.Symbol(x)) {
			lp := math.Log(p)
			if lp > score[x][q2] {
				score[x][q2] = lp
				back[0][x][q2] = bp{-1, t.Start()}
			}
		}
	}
	for i := 1; i < n; i++ {
		next := make([][]float64, nNodes)
		for x := range next {
			next[x] = make([]float64, nStates)
			for q := range next[x] {
				next[x][q] = negInf
			}
		}
		tr := m.Trans[i-1]
		for x := 0; x < nNodes; x++ {
			for q := 0; q < nStates; q++ {
				base := score[x][q]
				if base == negInf {
					continue
				}
				for y := 0; y < nNodes; y++ {
					p := tr[x][y]
					if p == 0 {
						continue
					}
					lp := base + math.Log(p)
					for _, q2 := range t.Succ(q, automata.Symbol(y)) {
						if lp > next[y][q2] {
							next[y][q2] = lp
							back[i][y][q2] = bp{x, q}
						}
					}
				}
			}
		}
		score = next
	}
	bestX, bestQ, best := -1, -1, negInf
	for x := 0; x < nNodes; x++ {
		for q := 0; q < nStates; q++ {
			if t.Accepting(q) && score[x][q] > best {
				best, bestX, bestQ = score[x][q], x, q
			}
		}
	}
	if bestX < 0 {
		return nil, nil, negInf, false
	}
	nodes = make([]automata.Symbol, n)
	states = make([]int, n)
	x, q := bestX, bestQ
	for i := n - 1; i >= 0; i-- {
		nodes[i] = automata.Symbol(x)
		states[i] = q
		prev := back[i][x][q]
		x, q = prev.x, prev.q
	}
	return nodes, states, best, true
}

// BestEvidence returns the maximum-probability possible world of μ that is
// transduced into answer o, together with its log probability — i.e. a
// witness of E_max(o) (Example 4.2). ok is false when o is not an answer.
//
// One-shot form; Evaluator.BestEvidence amortizes the base tables and
// reuses the enumerator's prefix checkpoints.
func BestEvidence(t *transducer.Transducer, m *markov.Sequence, o []automata.Symbol) (s []automata.Symbol, logE float64, ok bool) {
	c := transducer.Constraint{Prefix: o, Mode: transducer.ExactOnly}
	_, nodes, _, lp, ok := kernel.ConstrainedViterbi(kernel.NewNFATables(t), m.View(), c, nil)
	return nodes, lp, ok
}

// Answer is an enumerated answer with its E_max score (in log space).
type Answer struct {
	Output  []automata.Symbol
	LogEmax float64
}

// Enumerator yields A^ω(μ) in decreasing E_max with polynomial delay
// (Theorem 4.3). Create with NewEnumerator and drain with Next. Each
// subproblem is resolved lazily against its parent answer's prefix
// checkpoint; WithWorkers adds speculative parallel resolution without
// changing the emitted sequence.
type Enumerator struct {
	inner   *lawler.Enumerator[Answer]
	ev      *Evaluator
	workers int
}

// NewEnumerator prepares the decreasing-E_max enumeration of the answers
// of t over m. Options: WithWorkers, WithTables, WithCheckpointCap,
// WithExhaustive, WithBounds.
func NewEnumerator(t *transducer.Transducer, m *markov.Sequence, opts ...Option) *Enumerator {
	cfg := config{ckCap: defaultCheckpointCap}
	for _, o := range opts {
		o(&cfg)
	}
	ev := NewEvaluator(t, m, opts...)
	return ev.Enumerate(cfg.workers)
}

// lawlerConfig is the Lawler–Murty wiring shared by Enumerate and the
// cross-append reseed (ExtendEnumerator): resolve against the parent
// answer's prefix checkpoint, partition with Constraint.Children.
func (ev *Evaluator) lawlerConfig(workers int) lawler.Config[Answer] {
	return lawler.Config[Answer]{
		Root: transducer.Unconstrained(),
		Resolve: func(ctx context.Context, c transducer.Constraint, parent Answer, root bool) (Answer, float64, bool, error) {
			// Children of a printed answer share its checkpoint: every
			// child prefix is a prefix of the parent's output.
			align := parent.Output
			if root {
				align = c.Prefix
			}
			o, _, logE, ok, err := ev.resolveCtx(ctx, c, align)
			return Answer{Output: o, LogEmax: logE}, logE, ok, err
		},
		Children: func(c transducer.Constraint, top Answer) []transducer.Constraint {
			return c.Children(top.Output)
		},
		Workers: workers,
		// Exact E_max ties emit in lexicographic output order — a
		// construction-independent rule, so a reseeded post-append
		// enumerator (whose queue insertion order necessarily differs)
		// emits the same sequence as a from-scratch one. Distinct queue
		// items hold disjoint regions, so resolved tops never compare
		// equal and the order is total.
		Tie: func(a, b Answer) int {
			return slices.Compare(a.Output, b.Output)
		},
	}
}

// Enumerate starts a decreasing-E_max enumeration sharing this
// evaluator's tables and checkpoint cache. workers ≤ 1 is the sequential
// reference behavior; workers > 1 resolves speculatively in parallel
// with an identical emitted sequence.
func (ev *Evaluator) Enumerate(workers int) *Enumerator {
	return &Enumerator{inner: lawler.New(ev.lawlerConfig(workers)), ev: ev, workers: workers}
}

// Evaluator returns the evaluator backing this enumeration.
func (e *Enumerator) Evaluator() *Evaluator { return e.ev }

// ExtendStats reports the backing evaluator's cross-append reuse
// counters (zero for enumerations that never crossed an append).
func (e *Enumerator) ExtendStats() (reused, reseeded, handlesSkipped uint64) {
	if e.ev == nil {
		return 0, 0, 0
	}
	return e.ev.ExtendStats()
}

// Next returns the next answer in decreasing E_max, or ok=false when all
// answers have been enumerated. Each answer is produced exactly once: the
// Lawler children of a popped constraint partition its remaining answers.
func (e *Enumerator) Next() (Answer, bool) {
	a, _, ok := e.inner.Next()
	return a, ok
}

// NextCtx is Next with cancellation: a non-nil error (ctx.Err()) means
// no answer was consumed — the answers already emitted stand, and a
// later call with a live context resumes the ranked order exactly where
// it stopped.
func (e *Enumerator) NextCtx(ctx context.Context) (Answer, bool, error) {
	a, _, ok, err := e.inner.NextCtx(ctx)
	return a, ok, err
}

// Emax computes E_max(o) = max{Pr(s) : s →[A^ω]→ o} in log space, using
// the exact-output constraint and the constrained Viterbi kernel. It
// returns -Inf when o is not an answer. One-shot form; see
// Evaluator.Emax for the amortized path.
func Emax(t *transducer.Transducer, m *markov.Sequence, o []automata.Symbol) float64 {
	_, lp, ok := TopEmax(t, m, transducer.Constraint{Prefix: o, Mode: transducer.ExactOnly})
	if !ok {
		return math.Inf(-1)
	}
	return lp
}
