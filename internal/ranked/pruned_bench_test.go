// Benchmark pair for the weight-pushed pruned kernel: the same RFID
// top-10 drain through the default (bounded) path and the exhaustive
// reference, feeding `make bench` / BENCH_ranked.json. The evaluator is
// rebuilt per iteration, so each iteration pays the full serving cost
// including the one-time backward potential sweep — the speedup shown
// is the end-to-end one a cold query sees. The pruning-efficacy
// counters (cells pruned, cells visited, occupancy) land in the
// result's "extra" map for EXPERIMENTS.md and cmd/benchcmp.
package ranked

import (
	"testing"
)

// benchPrunedDrain drains the top-benchTopK answers of the n=200 RFID
// workload once per iteration and reports the final iteration's
// pruning counters.
func benchPrunedDrain(b *testing.B, opts ...Option) {
	tr, m := rfidRankedWorkload(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	var ev *Evaluator
	for i := 0; i < b.N; i++ {
		ev = NewEvaluator(tr, m, opts...)
		if got := drainAnswers(ev.Enumerate(1).Next, benchTopK); len(got) < benchTopK {
			b.Fatalf("drained %d answers, want %d", len(got), benchTopK)
		}
	}
	st := ev.PruneStats()
	b.ReportMetric(float64(st.PrunedCells), "pruned-cells/op")
	b.ReportMetric(float64(st.VisitedCells), "visited-cells/op")
	if total := st.PrunedCells + st.VisitedCells; total > 0 {
		b.ReportMetric(float64(st.PrunedCells)/float64(total)*100, "pruned-pct")
	}
	// PR 8 counters: bounded candidate selection (crossing candidates
	// recorded vs. dropped against the running bound, boundary cells whose
	// whole fan-out was skipped) and lazy checkpoint materialization
	// (layers relaxed on demand vs. eagerly; the deferred gap is the DP
	// the drain never paid for).
	b.ReportMetric(float64(st.CandsSelected), "cands-selected/op")
	b.ReportMetric(float64(st.CandsSkipped), "cands-skipped/op")
	b.ReportMetric(float64(st.BoundaryCellsSkipped), "cells-skipped/op")
	b.ReportMetric(float64(st.LazyLayers), "lazy-layers/op")
	b.ReportMetric(float64(st.EagerLayers), "eager-layers/op")
	if st.LazyHandles > 0 {
		deferred := st.LazyHandles*uint64(m.Len()) - st.LazyLayers
		b.ReportMetric(float64(deferred), "ck-layers-deferred/op")
	}
}

// BenchmarkRankedEagerCheckpoints isolates the lazy-materialization
// delta: the same drain with checkpoints built at request time.
func BenchmarkRankedEagerCheckpoints(b *testing.B) { benchPrunedDrain(b, WithEagerCheckpoints()) }

func BenchmarkRankedPruned(b *testing.B)     { benchPrunedDrain(b) }
func BenchmarkRankedExhaustive(b *testing.B) { benchPrunedDrain(b, WithExhaustive()) }

// TestPrunedBenchWorkloadSmoke keeps the benchmark pair honest under
// plain `go test`: both paths emit the identical top-10 on the n=200
// workload the speedup is quoted for.
func TestPrunedBenchWorkloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("n=200 drain in -short mode")
	}
	tr, m := rfidRankedWorkload(t, 200)
	got := drainAnswers(NewEnumerator(tr, m).Next, benchTopK)
	want := drainAnswers(NewEnumerator(tr, m, WithExhaustive()).Next, benchTopK)
	assertSameAnswerSequence(t, "rfid n=200 top-10", got, want)
}
