// Differential tests for lazy checkpoint materialization at the
// enumerator level: lazy handles are the default and must be invisible —
// the enumeration drained through deferred checkpoint builds is required
// to be bit-identical (outputs and Float64bits of every score) to the
// eager builds behind WithEagerCheckpoints and to the exhaustive sweep,
// across the shared workload pool, cancellation, and append-then-rank.
// The stats tests pin the observable difference: where the DP work lands
// (LazyLayers vs EagerLayers) and which handles never materialize.
package ranked

import (
	"context"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/testutil"
	"markovseq/internal/transducer"
)

// TestLazyMatchesEagerCheckpoints is the tentpole's second correctness
// contract: for every workload, draining the default (lazy-checkpoint)
// enumerator — with and without speculative workers — yields the exact
// answer sequence of the eager-checkpoint build and of the exhaustive
// reference, bit for bit.
func TestLazyMatchesEagerCheckpoints(t *testing.T) {
	testutil.CheckLeaks(t)
	const cap = 40
	for _, w := range prunedWorkloads(t) {
		eager := drainAnswers(NewEnumerator(w.t, w.m, WithEagerCheckpoints()).Next, cap)
		exhaustive := drainAnswers(NewEnumerator(w.t, w.m, WithExhaustive()).Next, cap)
		assertSameAnswerSequence(t, w.name+" eager-vs-exhaustive", eager, exhaustive)
		for _, workers := range []int{1, 4} {
			lazy := drainAnswers(NewEnumerator(w.t, w.m, WithWorkers(workers)).Next, cap)
			assertSameAnswerSequence(t, w.name+" lazy", lazy, eager)
		}
	}
}

// TestLazyResumeAfterCancel combines lazy materialization with the PR 3
// resume contract: a lazy enumerator cancelled mid-drain — possibly with
// a handle's deferred build in flight — resumes the exact ranked order,
// and prefix+suffix equals the eager-checkpoint enumeration.
func TestLazyResumeAfterCancel(t *testing.T) {
	testutil.CheckLeaks(t)
	for _, w := range prunedWorkloads(t) {
		full := drainAnswers(NewEnumerator(w.t, w.m, WithEagerCheckpoints()).Next, 24)
		if len(full) < 3 {
			continue
		}
		k := len(full) / 2
		e := NewEnumerator(w.t, w.m)
		ctx, cancel := context.WithCancel(context.Background())
		prefix, err := drainCtx(ctx, e, k)
		if err != nil {
			t.Fatalf("%s: live-context drain failed: %v", w.name, err)
		}
		cancel()
		if _, ok, err := e.NextCtx(ctx); err == nil || ok {
			t.Fatalf("%s: cancelled NextCtx did not report the cancellation", w.name)
		}
		rest, err := drainCtx(context.Background(), e, len(full)-k)
		if err != nil {
			t.Fatalf("%s: resume after cancel failed: %v", w.name, err)
		}
		assertSameAnswerSequence(t, w.name+" lazy prefix", prefix, full[:k])
		assertSameAnswerSequence(t, w.name+" lazy suffix", rest, full[k:])
	}
}

// TestLazyAppendThenRank combines lazy materialization with the PR 6
// append contract: ranking a sequence grown event by event through
// Extended is bit-identical — under the default lazy-checkpoint path —
// to the eager-checkpoint enumeration of the same sequence built in one
// shot.
func TestLazyAppendThenRank(t *testing.T) {
	testutil.CheckLeaks(t)
	in := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(15300 + trial)))
		n := 6 + rng.Intn(5)
		full := markov.Random(in, n, 0.6, rng)
		tr := randomNDTransducer(in, out, 1+rng.Intn(3), rng)
		p := 1 + rng.Intn(n-1)
		grown := full.Window(1, p)
		for i := p; i < n; i++ {
			var err error
			grown, err = grown.Extended([][][]float64{full.TransAt(i)})
			if err != nil {
				t.Fatalf("trial %d: extend at %d: %v", trial, i, err)
			}
		}
		got := drainAnswers(NewEnumerator(tr, grown).Next, 30)
		want := drainAnswers(NewEnumerator(tr, full, WithEagerCheckpoints()).Next, 30)
		assertSameAnswerSequence(t, "lazy append-then-rank", got, want)
	}
}

// TestLazyCheckpointDeferred pins the laziness itself: a checkpoint
// handle handed out by the evaluator has materialized nothing until a
// resolve touches it, and the first touch builds the full DP.
func TestLazyCheckpointDeferred(t *testing.T) {
	tr, m := rfidRankedWorkload(t, 40)

	ev := NewEvaluator(tr, m)
	ck := ev.checkpoint(nil)
	if got := ck.MaterializedLayers(); got != 0 {
		t.Fatalf("untouched lazy handle materialized %d layers, want 0", got)
	}
	if got := ck.Cells(); got != 0 {
		t.Fatalf("untouched lazy handle holds %d cells, want 0", got)
	}
	if _, _, ok := ev.TopEmax(transducer.Unconstrained()); !ok {
		t.Fatal("unconstrained top answer missing")
	}
	if got, want := ck.MaterializedLayers(), ck.Layers(); got != want {
		t.Fatalf("touched lazy handle materialized %d layers, want the full %d", got, want)
	}

	eg := NewEvaluator(tr, m, WithEagerCheckpoints())
	eck := eg.checkpoint(nil)
	if got, want := eck.MaterializedLayers(), eck.Layers(); got != want {
		t.Fatalf("eager checkpoint materialized %d layers at build, want %d", got, want)
	}
}

// TestLazyStatsAccumulate pins the observability contract of the lazy
// path: a drained lazy evaluator reports its handles and the layers they
// relaxed on demand (never more than a full build per handle, and no
// eager layers), while an eager evaluator reports the mirror image —
// the counters are how operators confirm where the DP work landed.
func TestLazyStatsAccumulate(t *testing.T) {
	tr, m := rfidRankedWorkload(t, 40)
	n := uint64(40)

	ev := NewEvaluator(tr, m)
	drainAnswers(ev.Enumerate(1).Next, 15)
	st := ev.PruneStats()
	if st.LazyHandles == 0 || st.LazyLayers == 0 {
		t.Fatalf("lazy evaluator reported no deferred builds: %+v", st)
	}
	if st.EagerLayers != 0 {
		t.Fatalf("lazy evaluator reported eager layers: %+v", st)
	}
	if st.LazyLayers > st.LazyHandles*n {
		t.Fatalf("lazy drain relaxed %d layers over %d handles of %d: a handle materialized more than once",
			st.LazyLayers, st.LazyHandles, n)
	}
	if st.CandsSelected == 0 {
		t.Fatalf("lazy evaluator reported no bounded candidate selection: %+v", st)
	}

	eg := NewEvaluator(tr, m, WithEagerCheckpoints())
	drainAnswers(eg.Enumerate(1).Next, 15)
	est := eg.PruneStats()
	if est.EagerLayers == 0 {
		t.Fatalf("eager evaluator reported no eager layers: %+v", est)
	}
	if est.LazyHandles != 0 || est.LazyLayers != 0 {
		t.Fatalf("eager evaluator accumulated lazy counters: %+v", est)
	}
}
