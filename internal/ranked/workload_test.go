package ranked

import (
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/rfid"
	"markovseq/internal/textgen"
	"markovseq/internal/transducer"
)

// rfidRankedWorkload is the serving-layer workload of the delay
// benchmarks: a 4-room hospital HMM, an n-reading simulated trace, and
// the "entered the lab" place transducer.
func rfidRankedWorkload(tb testing.TB, n int) (*transducer.Transducer, *markov.Sequence) {
	tb.Helper()
	f := rfid.Hospital(4, 2)
	h := rfid.BuildHMM(f, rfid.DefaultNoise)
	trc, err := rfid.Simulate(h, n, rand.New(rand.NewSource(31)))
	if err != nil {
		tb.Fatal(err)
	}
	return rfid.PlaceTransducer(f, "lab"), trc.Seq
}

// textgenRankedWorkload is the extraction workload: a noisy-channel
// Markov sequence over the text alphabet and a random nondeterministic
// transducer with 0/1-symbol emissions.
func textgenRankedWorkload(tb testing.TB) (*transducer.Transducer, *markov.Sequence) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	ab := textgen.Alphabet()
	doc := textgen.Generate(4, 10, 3, rng)
	m := textgen.Noisy(ab, doc.Text, 0.1, rng)
	out := automata.MustAlphabet("x", "y")
	tr := transducer.New(ab, out, 4, 0)
	for q := 0; q < 4; q++ {
		tr.SetAccepting(q, true)
		for _, s := range ab.Symbols() {
			var e []automata.Symbol
			if rng.Intn(2) == 0 {
				e = []automata.Symbol{automata.Symbol(rng.Intn(out.Size()))}
			}
			tr.AddTransition(q, s, rng.Intn(4), e)
		}
	}
	return tr, m
}
