package ranked

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/testutil"
	"markovseq/internal/transducer"
)

// drainCtx pulls answers through NextCtx until ok=false, an error, or k
// answers (k ≤ 0 means no bound), returning the answers and the first
// error observed.
func drainCtx(ctx context.Context, e *Enumerator, k int) ([]Answer, error) {
	var out []Answer
	for k <= 0 || len(out) < k {
		a, ok, err := e.NextCtx(ctx)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out, nil
}

// TestCancelYieldsExactRankedPrefix is the cancellation correctness
// contract: cancelling after k answers yields exactly the first k
// answers of the uncancelled enumeration — bit-identical outputs and
// scores, never a reordered or partial-rank mixture — and a later call
// with a live context resumes the identical remainder. Checked for the
// sequential path and for every speculative worker count (under -race
// this exercises the cancelled parallel resolver too).
func TestCancelYieldsExactRankedPrefix(t *testing.T) {
	testutil.CheckLeaks(t)
	type workload struct {
		name string
		t    *transducer.Transducer
		m    *markov.Sequence
	}
	var ws []workload
	{
		tr, m := rfidRankedWorkload(t, 40)
		ws = append(ws, workload{"rfid", tr, m})
	}
	in := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(9200 + trial)))
		m := markov.Random(in, 2+rng.Intn(4), 0.6, rng)
		ws = append(ws, workload{"random", randomNDTransducer(in, out, 1+rng.Intn(3), rng), m})
	}
	for _, w := range ws {
		full := drainAnswers(NewEnumerator(w.t, w.m).Next, 30)
		if len(full) < 3 {
			continue
		}
		for _, workers := range []int{1, 4} {
			for _, k := range []int{0, 1, len(full) / 2, len(full) - 1} {
				e := NewEnumerator(w.t, w.m, WithWorkers(workers))
				ctx, cancel := context.WithCancel(context.Background())
				var prefix []Answer
				if k > 0 {
					var err error
					prefix, err = drainCtx(ctx, e, k)
					if err != nil {
						t.Fatalf("%s workers=%d: live-context drain failed: %v", w.name, workers, err)
					}
				}
				cancel()
				if a, ok, err := e.NextCtx(ctx); !errors.Is(err, context.Canceled) || ok {
					t.Fatalf("%s workers=%d k=%d: cancelled NextCtx = (%v, %v, %v), want context.Canceled",
						w.name, workers, k, a, ok, err)
				}
				assertSameAnswerSequence(t, w.name+" cancelled prefix", prefix, full[:k])
				// A cancelled call consumes nothing: resuming with a live
				// context continues the exact ranked sequence.
				rest, err := drainCtx(context.Background(), e, len(full)-k)
				if err != nil {
					t.Fatalf("%s workers=%d: resume after cancel failed: %v", w.name, workers, err)
				}
				assertSameAnswerSequence(t, w.name+" resumed suffix", rest, full[k:len(full)])
			}
		}
	}
}

// TestNextCtxMatchesNext checks that an uncancelled NextCtx drain is
// bit-identical to the legacy Next drain, sequentially and in parallel.
func TestNextCtxMatchesNext(t *testing.T) {
	testutil.CheckLeaks(t)
	tr, m := textgenRankedWorkload(t)
	want := drainAnswers(NewEnumerator(tr, m).Next, 25)
	for _, workers := range []int{1, 4} {
		got, err := drainCtx(context.Background(), NewEnumerator(tr, m, WithWorkers(workers)), 25)
		if err != nil {
			t.Fatalf("workers=%d: NextCtx drain failed: %v", workers, err)
		}
		assertSameAnswerSequence(t, "NextCtx", got, want)
	}
}

// TestExpiredDeadlineReturnsImmediately checks that an already-expired
// context aborts before any resolution work and reports
// context.DeadlineExceeded.
func TestExpiredDeadlineReturnsImmediately(t *testing.T) {
	testutil.CheckLeaks(t)
	tr, m := rfidRankedWorkload(t, 40)
	for _, workers := range []int{1, 4} {
		e := NewEnumerator(tr, m, WithWorkers(workers))
		ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
		defer cancel()
		if _, ok, err := e.NextCtx(ctx); !errors.Is(err, context.DeadlineExceeded) || ok {
			t.Fatalf("workers=%d: expired-deadline NextCtx ok=%v err=%v, want DeadlineExceeded", workers, ok, err)
		}
		// The expired call consumed nothing.
		if a, ok, err := e.NextCtx(context.Background()); err != nil || !ok {
			t.Fatalf("workers=%d: resume after deadline ok=%v err=%v", workers, ok, err)
		} else if want := drainAnswers(NewEnumerator(tr, m).Next, 1); !automata.EqualStrings(a.Output, want[0].Output) {
			t.Fatalf("workers=%d: first answer after expiry %v, want %v", workers, a.Output, want[0].Output)
		}
	}
}
