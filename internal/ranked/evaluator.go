package ranked

import (
	"container/list"
	"context"
	"math"
	"sync"

	"markovseq/internal/automata"
	"markovseq/internal/kernel"
	"markovseq/internal/markov"
	"markovseq/internal/transducer"
)

// Option configures an Evaluator or Enumerator.
type Option func(*config)

type config struct {
	workers    int
	ckCap      int
	nt         *kernel.NFATables
	exhaustive bool
	eagerCk    bool
	bounds     *kernel.Bounds
}

// WithWorkers bounds the enumerator's speculative-resolution pool;
// values ≤ 1 select the sequential reference behavior. The parallel
// enumerator emits the exact answer sequence of the sequential one.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithTables supplies pre-built base transducer tables (core.Prepared
// builds them once at prepare time), avoiding a rebuild per evaluator.
func WithTables(nt *kernel.NFATables) Option { return func(c *config) { c.nt = nt } }

// WithCheckpointCap bounds the prefix-checkpoint LRU (in checkpoints).
func WithCheckpointCap(n int) Option { return func(c *config) { c.ckCap = n } }

// WithExhaustive disables weight-pushed pruning, keeping the exhaustive
// frontier sweep. The pruned kernel is bit-identical to it by
// construction; this option exists as the differential reference and as
// an escape hatch.
func WithExhaustive() Option { return func(c *config) { c.exhaustive = true } }

// WithEagerCheckpoints disables lazy checkpoint materialization: prefix
// checkpoints are fully built when first requested, as before PR 8,
// while weight-pushed pruning stays active. Lazy handles resume to
// bit-identical answers by construction; this option exists as a
// differential reference and as an escape hatch (e.g. to front-load
// build cost outside a latency-critical drain). Implied by
// WithExhaustive.
func WithEagerCheckpoints() Option { return func(c *config) { c.eagerCk = true } }

// WithBounds supplies pre-computed weight-pushed potentials for the
// evaluator's (tables, sequence) pair, sharing one backward sweep across
// evaluators and probes (core.Engine builds them once per binding).
// Without it the evaluator computes its own on first use.
func WithBounds(b *kernel.Bounds) Option { return func(c *config) { c.bounds = b } }

const defaultCheckpointCap = 32

// Evaluator owns the constraint-incremental machinery for one
// (transducer, sequence) pair: base tables built once, the sequence's
// CSR view, and a bounded LRU of prefix checkpoints keyed by alignment
// string. Safe for concurrent use — the parallel enumerator's workers
// share one evaluator.
type Evaluator struct {
	t     *transducer.Transducer
	m     *markov.Sequence
	nt    *kernel.NFATables
	v     *kernel.SeqView
	cache ckptCache

	// bounds are the weight-pushed potentials driving checkpoint gating
	// and resume pruning; nil when WithExhaustive selected the reference
	// sweep. Built lazily (one backward pass) unless supplied. eagerCk
	// forces full checkpoint builds at cache-miss time instead of lazy
	// handles.
	exhaustive bool
	eagerCk    bool
	boundsOnce sync.Once
	bounds     *kernel.Bounds
}

// NewEvaluator builds an evaluator for t over m. WithTables reuses
// already-built base tables; WithCheckpointCap bounds the LRU.
func NewEvaluator(t *transducer.Transducer, m *markov.Sequence, opts ...Option) *Evaluator {
	cfg := config{ckCap: defaultCheckpointCap}
	for _, o := range opts {
		o(&cfg)
	}
	nt := cfg.nt
	if nt == nil {
		nt = kernel.NewNFATables(t)
	}
	ev := &Evaluator{t: t, m: m, nt: nt, v: m.View(), exhaustive: cfg.exhaustive, eagerCk: cfg.eagerCk || cfg.exhaustive}
	if !ev.exhaustive && cfg.bounds != nil {
		ev.bounds = cfg.bounds
		ev.boundsOnce.Do(func() {})
	}
	ev.cache.init(cfg.ckCap)
	return ev
}

// Tables returns the evaluator's base transducer tables.
func (ev *Evaluator) Tables() *kernel.NFATables { return ev.nt }

// Bounds returns the evaluator's weight-pushed potentials, computing
// them on first use; nil in exhaustive mode.
func (ev *Evaluator) Bounds() *kernel.Bounds {
	if ev.exhaustive {
		return nil
	}
	ev.boundsOnce.Do(func() { ev.bounds = kernel.NewBounds(ev.nt, ev.v) })
	return ev.bounds
}

// PruneStats reports the pruning-efficacy counters accumulated by the
// evaluator's kernel calls (all zero in exhaustive mode).
func (ev *Evaluator) PruneStats() kernel.PruneStats { return ev.bounds.Stats() }

// checkpoint returns the cached checkpoint aligned to align, building
// and caching it on a miss. Concurrent misses for the same alignment
// are coalesced into a single build (the speculative workers resolving
// the Lawler children of one parent all want the parent's checkpoint at
// once; without coalescing each would rebuild it and the dominant cost
// would be duplicated instead of shared).
func (ev *Evaluator) checkpoint(align []automata.Symbol) *kernel.Checkpoint {
	ck, _ := ev.checkpointCtx(context.Background(), align)
	return ck
}

// checkpointCtx is checkpoint with cancellation. A leader whose build is
// cancelled publishes no checkpoint: it withdraws the in-flight entry
// and wakes its waiters, each of which retries getOrStart — so one
// request's deadline never poisons the cache for the others, and the
// next caller (possibly a woken waiter) becomes the new leader.
func (ev *Evaluator) checkpointCtx(ctx context.Context, align []automata.Symbol) (*kernel.Checkpoint, error) {
	key := automata.StringKey(align)
	for {
		ck, build, leader := ev.cache.getOrStart(key)
		if ck != nil {
			return ck, nil
		}
		if !leader {
			select {
			case <-build.done:
				if build.ck != nil {
					return build.ck, nil
				}
				continue // the leader was cancelled; retry and maybe lead
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		var err error
		if ev.eagerCk {
			ck, err = kernel.BuildCheckpointBoundedCtx(ctx, ev.nt, ev.v, align, ev.Bounds(), nil)
		} else {
			// O(1): the DP is deferred until a resolve first reads a
			// layer — checkpoints of parents whose children never reach
			// the Lawler queue front are never built at all, and the
			// single flight on the handle means concurrent workers still
			// share one materialization (the handle serializes it).
			ck = kernel.NewLazyCheckpoint(ev.nt, ev.v, align, ev.Bounds())
		}
		if err != nil {
			ev.cache.fail(key, build)
			close(build.done)
			return nil, err
		}
		build.ck = ck
		close(build.done)
		ev.cache.finish(key, ck)
		return ck, nil
	}
}

// resolve solves the constrained top-answer problem for c against the
// checkpoint aligned to align (which must extend c.Prefix).
func (ev *Evaluator) resolve(c transducer.Constraint, align []automata.Symbol) (out, nodes []automata.Symbol, logE float64, ok bool) {
	out, nodes, logE, ok, _ = ev.resolveCtx(context.Background(), c, align)
	return out, nodes, logE, ok
}

// resolveCtx is resolve with cancellation of both the checkpoint build
// and the resume DP.
func (ev *Evaluator) resolveCtx(ctx context.Context, c transducer.Constraint, align []automata.Symbol) (out, nodes []automata.Symbol, logE float64, ok bool, err error) {
	ck, err := ev.checkpointCtx(ctx, align)
	if err != nil {
		return nil, nil, math.Inf(-1), false, err
	}
	out, nodes, _, logE, ok, err = kernel.ResumeConstrainedBoundedCtx(ctx, ev.nt, ev.v, ck, c, ev.Bounds(), nil)
	return out, nodes, logE, ok, err
}

// TopEmax returns an answer with maximal E_max among those c admits,
// resolving through the checkpoint cache aligned to c's own prefix.
func (ev *Evaluator) TopEmax(c transducer.Constraint) (o []automata.Symbol, logE float64, ok bool) {
	o, _, logE, ok = ev.resolve(c, c.Prefix)
	return o, logE, ok
}

// Emax computes log E_max(o) through the cached base tables (and, when
// the enumerator has just printed o, its cached checkpoint). It returns
// -Inf when o is not an answer.
func (ev *Evaluator) Emax(o []automata.Symbol) float64 {
	_, _, logE, ok := ev.resolve(transducer.Constraint{Prefix: o, Mode: transducer.ExactOnly}, o)
	if !ok {
		return math.Inf(-1)
	}
	return logE
}

// BestEvidence returns the maximum-probability possible world transduced
// into o — a witness of E_max(o) — through the cached base tables.
func (ev *Evaluator) BestEvidence(o []automata.Symbol) (s []automata.Symbol, logE float64, ok bool) {
	_, nodes, logE, ok := ev.resolve(transducer.Constraint{Prefix: o, Mode: transducer.ExactOnly}, o)
	return nodes, logE, ok
}

// ckptCache is a mutex-guarded LRU of checkpoints keyed by alignment
// string, with single-flight coalescing of concurrent builds.
type ckptCache struct {
	mu       sync.Mutex
	cap      int
	items    map[string]*list.Element
	order    list.List // front = most recently used
	inflight map[string]*ckBuild
}

type ckEntry struct {
	key string
	ck  *kernel.Checkpoint
}

// ckBuild is an in-flight checkpoint build; done is closed by the
// leader once ck is set, or — after a cancelled build — with ck still
// nil, which tells waiters to retry.
type ckBuild struct {
	done chan struct{}
	ck   *kernel.Checkpoint
}

func (c *ckptCache) init(cap int) {
	if cap <= 0 {
		cap = defaultCheckpointCap
	}
	c.cap = cap
	c.items = make(map[string]*list.Element, cap)
	c.order.Init()
	c.inflight = map[string]*ckBuild{}
}

// getOrStart returns the cached checkpoint, or registers the caller in
// the build for key: leader=true means the caller must build, publish
// via finish, and close build.done; leader=false means another goroutine
// is building and the caller should wait on build.done.
func (c *ckptCache) getOrStart(key string) (ck *kernel.Checkpoint, build *ckBuild, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*ckEntry).ck, nil, false
	}
	if b, ok := c.inflight[key]; ok {
		return nil, b, false
	}
	b := &ckBuild{done: make(chan struct{})}
	c.inflight[key] = b
	return nil, b, true
}

// fail withdraws a cancelled build, but only if it is still the
// registered one (a new leader may already have re-registered the key).
// The caller closes b.done afterwards, waking waiters into a retry.
func (c *ckptCache) fail(key string, b *ckBuild) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inflight[key] == b {
		delete(c.inflight, key)
	}
}

// finish publishes a completed build into the LRU.
func (c *ckptCache) finish(key string, ck *kernel.Checkpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.inflight, key)
	if _, ok := c.items[key]; ok {
		return
	}
	c.items[key] = c.order.PushFront(&ckEntry{key: key, ck: ck})
	for len(c.items) > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.items, el.Value.(*ckEntry).key)
	}
}
