package ranked

import (
	"container/list"
	"context"
	"encoding/binary"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"markovseq/internal/automata"
	"markovseq/internal/kernel"
	"markovseq/internal/markov"
	"markovseq/internal/transducer"
)

// Option configures an Evaluator or Enumerator.
type Option func(*config)

type config struct {
	workers    int
	ckCap      int
	nt         *kernel.NFATables
	exhaustive bool
	eagerCk    bool
	extendable bool
	bounds     *kernel.Bounds
}

// WithWorkers bounds the enumerator's speculative-resolution pool;
// values ≤ 1 select the sequential reference behavior. The parallel
// enumerator emits the exact answer sequence of the sequential one.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithTables supplies pre-built base transducer tables (core.Prepared
// builds them once at prepare time), avoiding a rebuild per evaluator.
func WithTables(nt *kernel.NFATables) Option { return func(c *config) { c.nt = nt } }

// WithCheckpointCap bounds the prefix-checkpoint LRU (in checkpoints).
func WithCheckpointCap(n int) Option { return func(c *config) { c.ckCap = n } }

// WithExhaustive disables weight-pushed pruning, keeping the exhaustive
// frontier sweep. The pruned kernel is bit-identical to it by
// construction; this option exists as the differential reference and as
// an escape hatch.
func WithExhaustive() Option { return func(c *config) { c.exhaustive = true } }

// WithEagerCheckpoints disables lazy checkpoint materialization: prefix
// checkpoints are fully built when first requested, as before PR 8,
// while weight-pushed pruning stays active. Lazy handles resume to
// bit-identical answers by construction; this option exists as a
// differential reference and as an escape hatch (e.g. to front-load
// build cost outside a latency-critical drain). Implied by
// WithExhaustive.
func WithEagerCheckpoints() Option { return func(c *config) { c.eagerCk = true } }

// WithBounds supplies pre-computed weight-pushed potentials for the
// evaluator's (tables, sequence) pair, sharing one backward sweep across
// evaluators and probes (core.Engine builds them once per binding).
// Without it the evaluator computes its own on first use.
func WithBounds(b *kernel.Bounds) Option { return func(c *config) { c.bounds = b } }

// WithExtendable selects the append-extendable serving mode: resolves
// run unpruned and retain their final past-zone frontier per
// constraint, and prefix checkpoints are built ungated as lazy handles
// — so the whole drain state (checkpoint cache, retained frontiers,
// Lawler tree) remains valid forward state when the sequence grows and
// can be carried by Evaluator.Extend / ExtendEnumerator instead of
// being rebuilt. The answer sequence stays bit-identical to every other
// mode; the cost is forgoing the pruning win on each cold drain
// (~1.15×, see EXPERIMENTS.md "Weight-pushed pruning") plus the
// retained frontiers' memory, repaid after the first append.
// core.Engine turns this on automatically for engines reached through
// the append path (Prepared.ExtendValidated).
func WithExtendable() Option { return func(c *config) { c.extendable = true } }

const defaultCheckpointCap = 32

// extendableCheckpointCap is the default LRU capacity in extendable
// mode. The cross-append reseed prices every carried subproblem from
// its retained frontier plus the checkpoint of its alignment — the
// cache's working set is the whole live Lawler frontier, not the
// handful of alignments one drain touches. A cap sized for cold drains
// evicts most of that set between appends, and every evicted alignment
// demotes its subproblems to the coarse global bound G, forcing a full
// re-resolve storm per append that costs more than rebuilding.
const extendableCheckpointCap = 4096

// Evaluator owns the constraint-incremental machinery for one
// (transducer, sequence) pair: base tables built once, the sequence's
// CSR view, and a bounded LRU of prefix checkpoints keyed by alignment
// string. Safe for concurrent use — the parallel enumerator's workers
// share one evaluator.
type Evaluator struct {
	t     *transducer.Transducer
	m     *markov.Sequence
	nt    *kernel.NFATables
	v     *kernel.SeqView
	cache ckptCache

	// bounds are the weight-pushed potentials driving checkpoint gating
	// and resume pruning; nil when WithExhaustive selected the reference
	// sweep. Built lazily (one backward pass) unless supplied. eagerCk
	// forces full checkpoint builds at cache-miss time instead of lazy
	// handles.
	exhaustive bool
	eagerCk    bool
	extendable bool
	boundsOnce sync.Once
	bounds     *kernel.Bounds

	// ret is the cross-append reuse state (extendable mode only, nil
	// otherwise), shared by every evaluator generation in one extension
	// chain — see retention.
	ret *retention

	// Cross-append reuse counters (kernel.PruneStats.RankedReused etc.);
	// Extend copies them into the successor evaluator so cache-level sums
	// stay monotone across engine generations. resolveCalls counts
	// constrained resolves (the extendable path is unpruned, so the
	// Bounds-side Resolves counter never sees them).
	reused, reseeded, handlesSkipped, resolveCalls atomic.Uint64
}

// NewEvaluator builds an evaluator for t over m. WithTables reuses
// already-built base tables; WithCheckpointCap bounds the LRU.
func NewEvaluator(t *transducer.Transducer, m *markov.Sequence, opts ...Option) *Evaluator {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.ckCap <= 0 {
		if cfg.extendable {
			cfg.ckCap = extendableCheckpointCap
		} else {
			cfg.ckCap = defaultCheckpointCap
		}
	}
	nt := cfg.nt
	if nt == nil {
		nt = kernel.NewNFATables(t)
	}
	ev := &Evaluator{t: t, m: m, nt: nt, v: m.View(), exhaustive: cfg.exhaustive, eagerCk: cfg.eagerCk || cfg.exhaustive, extendable: cfg.extendable}
	if !ev.exhaustive && !ev.extendable && cfg.bounds != nil {
		ev.bounds = cfg.bounds
		ev.boundsOnce.Do(func() {})
	}
	if ev.extendable {
		ev.ret = &retention{
			frontier: make(map[string]*kernel.ResumeState),
			origin:   make(map[string]transducer.Constraint),
		}
	}
	ev.cache.init(cfg.ckCap)
	return ev
}

// Tables returns the evaluator's base transducer tables.
func (ev *Evaluator) Tables() *kernel.NFATables { return ev.nt }

// Bounds returns the evaluator's weight-pushed potentials, computing
// them on first use; nil in exhaustive and extendable modes (an
// extendable evaluator's retained state must be complete — unpruned
// frontiers, ungated checkpoints — to stay admissible across appends).
func (ev *Evaluator) Bounds() *kernel.Bounds {
	if ev.exhaustive || ev.extendable {
		return nil
	}
	ev.boundsOnce.Do(func() { ev.bounds = kernel.NewBounds(ev.nt, ev.v) })
	return ev.bounds
}

// Extendable reports whether the evaluator runs in the append-extendable
// mode (WithExtendable / Evaluator.Extend).
func (ev *Evaluator) Extendable() bool { return ev.extendable }

// ExtendStats returns the cross-append reuse counters: answers carried
// as exact singletons, frontier subproblems re-seeded with fresh bounds,
// and carried checkpoint handles that never materialized. Cumulative
// across Extend generations.
func (ev *Evaluator) ExtendStats() (reused, reseeded, handlesSkipped uint64) {
	return ev.reused.Load(), ev.reseeded.Load(), ev.handlesSkipped.Load()
}

// PruneStats reports the pruning-efficacy counters accumulated by the
// evaluator's kernel calls (all zero in exhaustive mode).
func (ev *Evaluator) PruneStats() kernel.PruneStats { return ev.bounds.Stats() }

// checkpoint returns the cached checkpoint aligned to align, building
// and caching it on a miss. Concurrent misses for the same alignment
// are coalesced into a single build (the speculative workers resolving
// the Lawler children of one parent all want the parent's checkpoint at
// once; without coalescing each would rebuild it and the dominant cost
// would be duplicated instead of shared).
func (ev *Evaluator) checkpoint(align []automata.Symbol) *kernel.Checkpoint {
	ck, _ := ev.checkpointCtx(context.Background(), align)
	return ck
}

// checkpointCtx is checkpoint with cancellation. A leader whose build is
// cancelled publishes no checkpoint: it withdraws the in-flight entry
// and wakes its waiters, each of which retries getOrStart — so one
// request's deadline never poisons the cache for the others, and the
// next caller (possibly a woken waiter) becomes the new leader.
func (ev *Evaluator) checkpointCtx(ctx context.Context, align []automata.Symbol) (*kernel.Checkpoint, error) {
	key := automata.StringKey(align)
	for {
		ck, build, leader := ev.cache.getOrStart(key)
		if ck != nil {
			return ck, nil
		}
		if !leader {
			select {
			case <-build.done:
				if build.ck != nil {
					return build.ck, nil
				}
				continue // the leader was cancelled; retry and maybe lead
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		var err error
		if ev.eagerCk {
			ck, err = kernel.BuildCheckpointBoundedCtx(ctx, ev.nt, ev.v, align, ev.Bounds(), nil)
		} else {
			// O(1): the DP is deferred until a resolve first reads a
			// layer — checkpoints of parents whose children never reach
			// the Lawler queue front are never built at all, and the
			// single flight on the handle means concurrent workers still
			// share one materialization (the handle serializes it).
			if ev.extendable {
				// A new alignment here is almost always a freshly emitted
				// answer extending an already-cached alignment by a symbol
				// or two (its Lawler parent's output, or a sibling's): give
				// the lazy handle the longest cached strict-prefix donor so
				// its build copies the shared zone columns instead of
				// re-running the full DP. Prefer an already-materialized
				// donor — deriving from one costs O(band) per position,
				// while an unmaterialized donor builds first.
				ck = kernel.NewLazyCheckpointFrom(ev.nt, ev.v, align, ev.donorFor(align))
			} else {
				ck = kernel.NewLazyCheckpoint(ev.nt, ev.v, align, ev.Bounds())
			}
		}
		if err != nil {
			ev.cache.fail(key, build)
			close(build.done)
			return nil, err
		}
		build.ck = ck
		close(build.done)
		ev.cache.finish(key, ck)
		return ck, nil
	}
}

// resolve solves the constrained top-answer problem for c against the
// checkpoint aligned to align (which must extend c.Prefix).
func (ev *Evaluator) resolve(c transducer.Constraint, align []automata.Symbol) (out, nodes []automata.Symbol, logE float64, ok bool) {
	out, nodes, logE, ok, _ = ev.resolveCtx(context.Background(), c, align)
	return out, nodes, logE, ok
}

// resolveCtx is resolve with cancellation of both the checkpoint build
// and the resume DP. In extendable mode the resume additionally
// captures its final past-zone frontier, retained per constraint for
// the cross-append reseed.
func (ev *Evaluator) resolveCtx(ctx context.Context, c transducer.Constraint, align []automata.Symbol) (out, nodes []automata.Symbol, logE float64, ok bool, err error) {
	ck, err := ev.checkpointCtx(ctx, align)
	if err != nil {
		return nil, nil, math.Inf(-1), false, err
	}
	ev.resolveCalls.Add(1)
	if ev.extendable {
		// Trace retention kicks in on the second resolve of a region: the
		// per-append re-resolve set is small and stable across epochs, so
		// only it pays the trace memory, and from the third resolve on the
		// sweep continues from the prior frontier in O(appended suffix).
		key := constraintKey(c)
		prior := ev.retainedByKey(key)
		rs := &kernel.ResumeState{Trace: prior != nil}
		out, nodes, _, logE, ok, _, err = kernel.ResumeConstrainedIncCtx(ctx, ev.nt, ev.v, ck, c, prior, rs, nil)
		if err == nil {
			ev.retainKey(key, rs)
		}
		return out, nodes, logE, ok, err
	}
	out, nodes, _, logE, ok, err = kernel.ResumeConstrainedBoundedCtx(ctx, ev.nt, ev.v, ck, c, ev.Bounds(), nil)
	return out, nodes, logE, ok, err
}

// retainCap bounds the retained-frontier map of one extendable
// evaluator. Overflow entries are simply not inserted: their
// subproblems fall back to coarser (still admissible) bounds at reseed
// time, trading a little pruning power for bounded memory.
const retainCap = 16384

// retention is the append-carryable resolve state shared by every
// evaluator generation in one extension chain. frontier maps constraint
// keys to the final past-zone frontier of the constraint's most recent
// resolve; origin maps an emitted answer's output key to the
// non-singleton constraint whose resolve first emitted it (carried
// children of that answer bound themselves through its retained
// frontier at reseed time even after the answer itself has been
// re-emitted as an exact singleton, whose empty frontier says nothing
// about the children's regions). Entries are immutable pointers
// replaced wholesale, and a reseed rejects any frontier captured past
// its own view (rs.N > v.N), so generations can share one map instead
// of copying O(frontier) entries per append.
type retention struct {
	mu       sync.Mutex
	frontier map[string]*kernel.ResumeState
	origin   map[string]transducer.Constraint
	// bscratch recycles the reseed's throwaway backward-sweep storage
	// (kernel.NewBoundsInto) across carries: one N·K·Q float64 array per
	// lineage instead of per append. Taken (nilled) at the start of a
	// carry and put back at the end, so an unusual concurrent carry just
	// allocates fresh instead of racing.
	bscratch *kernel.Bounds
}

// retainKey stores the frontier of the latest resolve under its
// constraint key. Entries are always fresh pointers, never mutated in
// place, so concurrent readers (an Extend running against an old
// generation) stay safe.
func (ev *Evaluator) retainKey(key string, rs *kernel.ResumeState) {
	ev.ret.mu.Lock()
	if _, ok := ev.ret.frontier[key]; ok || len(ev.ret.frontier) < retainCap {
		ev.ret.frontier[key] = rs
	}
	ev.ret.mu.Unlock()
}

// retainedByKey returns the most recent retained frontier under key,
// possibly from a resolve several append generations old, or nil.
func (ev *Evaluator) retainedByKey(key string) *kernel.ResumeState {
	ev.ret.mu.Lock()
	rs := ev.ret.frontier[key]
	ev.ret.mu.Unlock()
	return rs
}

// retainedFor is retainedByKey addressed by the constraint itself.
func (ev *Evaluator) retainedFor(c transducer.Constraint) *kernel.ResumeState {
	return ev.retainedByKey(constraintKey(c))
}

// constraintKey is a canonical encoding of a constraint's region
// identity: mode, prefix, and sorted forbidden set. Two constraints
// with equal keys admit the same output set, so a retained frontier
// keyed this way transfers exactly.
func constraintKey(c transducer.Constraint) string {
	return string(appendConstraintKey(nil, c))
}

// appendConstraintKey appends constraintKey's encoding to dst and
// returns the extended slice, letting the reseed loop probe the
// retention map with one reused buffer (indexing with string(buf) does
// not allocate). The prefix is length-delimited rather than separated:
// symbol encodings can contain any byte value, so no separator byte
// would be unambiguous.
func appendConstraintKey(dst []byte, c transducer.Constraint) []byte {
	dst = append(dst, byte('0'+int(c.Mode)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Prefix)))
	dst = automata.AppendKey(dst, c.Prefix)
	if len(c.Forbidden) > 0 {
		syms := make([]automata.Symbol, 0, len(c.Forbidden))
		for s := range c.Forbidden {
			syms = append(syms, s)
		}
		slices.Sort(syms)
		dst = automata.AppendKey(dst, syms)
	}
	return dst
}

// cachedCheckpoint returns the checkpoint cached for align without
// building on a miss (the reseed's zone bounds read already-built
// state; they never force work).
func (ev *Evaluator) cachedCheckpoint(align []automata.Symbol) *kernel.Checkpoint {
	return ev.cache.peek(automata.StringKey(align))
}

// donorFor looks up the longest cached checkpoint whose alignment is a
// strict prefix of align, probing only the few longest prefixes: a new
// alignment in steady state extends its Lawler parent's (or a tied
// sibling's) cached alignment by the final symbol or two, so a short
// probe finds the donor without scanning the cache.
func (ev *Evaluator) donorFor(align []automata.Symbol) *kernel.Checkpoint {
	for l := len(align) - 1; l >= 1 && l >= len(align)-3; l-- {
		if ck := ev.cache.peek(automata.StringKey(align[:l])); ck != nil {
			return ck
		}
	}
	return nil
}

// Extend derives an evaluator over mNew — an append-grown snapshot of
// the receiver's sequence (markov.Sequence.Extended) — that carries the
// receiver's checkpoint cache and retained resolve frontiers instead of
// starting cold. Carried checkpoints become O(1) extension handles
// (kernel.NewExtendedLazyCheckpoint): the DP over the shared prefix is
// reused and only the appended layers are ever relaxed. The receiver is
// only read, so it may keep serving concurrently; the new evaluator is
// extendable in turn, chaining across any number of appends. The
// receiver must itself be extendable — gated checkpoints and pruned
// frontiers from other modes are not valid forward state.
func (ev *Evaluator) Extend(mNew *markov.Sequence) *Evaluator {
	if !ev.extendable {
		panic("ranked: Extend on a non-extendable evaluator")
	}
	nev := &Evaluator{
		t:          ev.t,
		m:          mNew,
		nt:         ev.nt,
		v:          mNew.View(),
		extendable: true,
		// Shared, not copied: see retention. A frontier captured by a
		// resolve against the old generation is still the newest state for
		// its constraint, and one written later against the new view is
		// rejected by the old generation's reseed bound check.
		ret: ev.ret,
	}
	nev.cache.init(ev.cache.cap)
	nev.reused.Store(ev.reused.Load())
	nev.reseeded.Store(ev.reseeded.Load())
	nev.handlesSkipped.Store(ev.handlesSkipped.Load())
	var skipped uint64
	for _, ent := range ev.cache.snapshot() {
		if !ent.ck.Extendable(nev.nt, nev.v) {
			continue
		}
		if ent.ck.MaterializedLayers() == 0 && ent.ck.Layers() > 0 {
			// The previous drain emitted its answers without this handle
			// ever relaxing a layer: every child aligned to it stayed
			// bound-dominated. The extension handle keeps the deferral —
			// if that stays true over the grown sequence, the DP is never
			// run at all.
			skipped++
		}
		nev.cache.put(ent.key, kernel.NewExtendedLazyCheckpoint(nev.nt, nev.v, ent.ck))
	}
	nev.handlesSkipped.Add(skipped)
	return nev
}

// TopEmax returns an answer with maximal E_max among those c admits,
// resolving through the checkpoint cache aligned to c's own prefix.
func (ev *Evaluator) TopEmax(c transducer.Constraint) (o []automata.Symbol, logE float64, ok bool) {
	o, _, logE, ok = ev.resolve(c, c.Prefix)
	return o, logE, ok
}

// Emax computes log E_max(o) through the cached base tables (and, when
// the enumerator has just printed o, its cached checkpoint). It returns
// -Inf when o is not an answer.
func (ev *Evaluator) Emax(o []automata.Symbol) float64 {
	_, _, logE, ok := ev.resolve(transducer.Constraint{Prefix: o, Mode: transducer.ExactOnly}, o)
	if !ok {
		return math.Inf(-1)
	}
	return logE
}

// BestEvidence returns the maximum-probability possible world transduced
// into o — a witness of E_max(o) — through the cached base tables.
func (ev *Evaluator) BestEvidence(o []automata.Symbol) (s []automata.Symbol, logE float64, ok bool) {
	_, nodes, logE, ok := ev.resolve(transducer.Constraint{Prefix: o, Mode: transducer.ExactOnly}, o)
	return nodes, logE, ok
}

// ckptCache is a mutex-guarded LRU of checkpoints keyed by alignment
// string, with single-flight coalescing of concurrent builds.
type ckptCache struct {
	mu       sync.Mutex
	cap      int
	items    map[string]*list.Element
	order    list.List // front = most recently used
	inflight map[string]*ckBuild
}

type ckEntry struct {
	key string
	ck  *kernel.Checkpoint
}

// ckBuild is an in-flight checkpoint build; done is closed by the
// leader once ck is set, or — after a cancelled build — with ck still
// nil, which tells waiters to retry.
type ckBuild struct {
	done chan struct{}
	ck   *kernel.Checkpoint
}

func (c *ckptCache) init(cap int) {
	if cap <= 0 {
		cap = defaultCheckpointCap
	}
	c.cap = cap
	c.items = make(map[string]*list.Element, cap)
	c.order.Init()
	c.inflight = map[string]*ckBuild{}
}

// getOrStart returns the cached checkpoint, or registers the caller in
// the build for key: leader=true means the caller must build, publish
// via finish, and close build.done; leader=false means another goroutine
// is building and the caller should wait on build.done.
func (c *ckptCache) getOrStart(key string) (ck *kernel.Checkpoint, build *ckBuild, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*ckEntry).ck, nil, false
	}
	if b, ok := c.inflight[key]; ok {
		return nil, b, false
	}
	b := &ckBuild{done: make(chan struct{})}
	c.inflight[key] = b
	return nil, b, true
}

// fail withdraws a cancelled build, but only if it is still the
// registered one (a new leader may already have re-registered the key).
// The caller closes b.done afterwards, waking waiters into a retry.
func (c *ckptCache) fail(key string, b *ckBuild) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inflight[key] == b {
		delete(c.inflight, key)
	}
}

// peek returns the cached checkpoint for key without recording a use or
// building on a miss.
func (c *ckptCache) peek(key string) *kernel.Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*ckEntry).ck
	}
	return nil
}

// peekBytes is peek for callers that assemble keys into a reused
// buffer; the string(key) map index does not allocate.
func (c *ckptCache) peekBytes(key []byte) *kernel.Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[string(key)]; ok {
		return el.Value.(*ckEntry).ck
	}
	return nil
}

// snapshot returns the current entries in least-recently-used-first
// order, so that replaying them through put reproduces the same LRU
// order in a fresh cache. Used by Extend to carry the cache across an
// append.
func (c *ckptCache) snapshot() []*ckEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*ckEntry, 0, len(c.items))
	for el := c.order.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*ckEntry))
	}
	return out
}

// put inserts an already-built checkpoint (Extend pre-warming a carried
// cache) under the same LRU discipline as finish.
func (c *ckptCache) put(key string, ck *kernel.Checkpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return
	}
	c.items[key] = c.order.PushFront(&ckEntry{key: key, ck: ck})
	for len(c.items) > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.items, el.Value.(*ckEntry).key)
	}
}

// finish publishes a completed build into the LRU.
func (c *ckptCache) finish(key string, ck *kernel.Checkpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.inflight, key)
	if _, ok := c.items[key]; ok {
		return
	}
	c.items[key] = c.order.PushFront(&ckEntry{key: key, ck: ck})
	for len(c.items) > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.items, el.Value.(*ckEntry).key)
	}
}
