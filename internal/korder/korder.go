// Package korder implements k-order Markov sequences and their reduction
// to the first-order model. Footnote 3 of Kimelfeld & Ré (PODS 2010)
// states that all the paper's results generalize to k-order Markov
// sequences for fixed k; the reduction here is the reason: a k-order
// sequence over Σ lifts to a first-order sequence over the tuple alphabet
// Σ^k (restricted to reachable tuples), and a transducer over Σ lifts to
// one over the tuples that reads the last component, preserving every
// answer and confidence. The lifted alphabet has |Σ|^k symbols — the
// "provided k is fixed" caveat.
package korder

import (
	"fmt"
	"math/rand"
	"strings"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/transducer"
)

// Sequence is a k-order Markov sequence of length n over nodes Σ: the
// distribution of S_{i+1} depends on the previous min(i, k) nodes.
type Sequence struct {
	// Nodes is Σ.
	Nodes *automata.Alphabet
	// Order is k ≥ 1.
	Order int
	// N is the sequence length.
	N int
	// probs[i] maps a history h (the previous min(i,k) nodes, encoded with
	// historyKey) to the distribution of S_{i+1} (0-based position i).
	probs []map[string][]float64
}

// New returns a k-order sequence with no distributions set; fill with Set
// and then Validate.
func New(nodes *automata.Alphabet, order, n int) *Sequence {
	if order < 1 {
		panic("korder: order must be ≥ 1")
	}
	if n < 1 {
		panic("korder: length must be ≥ 1")
	}
	s := &Sequence{Nodes: nodes, Order: order, N: n, probs: make([]map[string][]float64, n)}
	for i := range s.probs {
		s.probs[i] = map[string][]float64{}
	}
	return s
}

func historyKey(h []automata.Symbol) string {
	var b strings.Builder
	for _, s := range h {
		fmt.Fprintf(&b, "%d,", s)
	}
	return b.String()
}

// truncate returns the effective history for position i (0-based): the
// last min(i, k) symbols of h, which must have length i or more.
func (s *Sequence) truncate(i int, h []automata.Symbol) []automata.Symbol {
	keep := i
	if keep > s.Order {
		keep = s.Order
	}
	return h[len(h)-keep:]
}

// Set assigns the distribution of position i (0-based) given history h
// (the previous min(i,k) nodes, oldest first). dist must have one entry
// per node.
func (s *Sequence) Set(i int, h []automata.Symbol, dist []float64) {
	if i < 0 || i >= s.N {
		panic(fmt.Sprintf("korder: position %d out of range [0,%d)", i, s.N))
	}
	want := i
	if want > s.Order {
		want = s.Order
	}
	if len(h) != want {
		panic(fmt.Sprintf("korder: position %d wants history length %d, got %d", i, want, len(h)))
	}
	if len(dist) != s.Nodes.Size() {
		panic("korder: distribution size mismatch")
	}
	s.probs[i][historyKey(h)] = append([]float64(nil), dist...)
}

// Dist returns the distribution of position i given history h (already
// truncated), or nil if unset.
func (s *Sequence) Dist(i int, h []automata.Symbol) []float64 {
	return s.probs[i][historyKey(s.truncate(i, h))]
}

// Prob returns the probability of the full string str (zero if any needed
// history is unset).
func (s *Sequence) Prob(str []automata.Symbol) float64 {
	if len(str) != s.N {
		return 0
	}
	p := 1.0
	for i := 0; i < s.N; i++ {
		dist := s.Dist(i, str[:i])
		if dist == nil {
			return 0
		}
		p *= dist[str[i]]
		if p == 0 {
			return 0
		}
	}
	return p
}

// Validate checks that every distribution that is set sums to one, and
// that every reachable history has a distribution.
func (s *Sequence) Validate() error {
	// Check sums.
	for i, m := range s.probs {
		for h, dist := range m {
			sum := 0.0
			for _, p := range dist {
				if p < 0 || p > 1 {
					return fmt.Errorf("korder: position %d history %q has invalid probability %v", i, h, p)
				}
				sum += p
			}
			if diff := sum - 1; diff > markov.Tolerance || diff < -markov.Tolerance {
				return fmt.Errorf("korder: position %d history %q sums to %v", i, h, sum)
			}
		}
	}
	// Check reachability by walking the support.
	type state struct {
		i int
		h string
	}
	seen := map[state]bool{}
	var walk func(i int, h []automata.Symbol) error
	walk = func(i int, h []automata.Symbol) error {
		if i == s.N {
			return nil
		}
		th := s.truncate(i, h)
		st := state{i, historyKey(th)}
		if seen[st] {
			return nil
		}
		seen[st] = true
		dist := s.probs[i][historyKey(th)]
		if dist == nil {
			return fmt.Errorf("korder: reachable history at position %d has no distribution", i)
		}
		for sym, p := range dist {
			if p == 0 {
				continue
			}
			if err := walk(i+1, append(h, automata.Symbol(sym))); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0, nil)
}

// Sample draws a random string.
func (s *Sequence) Sample(rng *rand.Rand) []automata.Symbol {
	out := make([]automata.Symbol, 0, s.N)
	for i := 0; i < s.N; i++ {
		dist := s.Dist(i, out)
		x := rng.Float64()
		acc := 0.0
		pick := automata.Symbol(0)
		for sym, p := range dist {
			if p == 0 {
				continue
			}
			pick = automata.Symbol(sym)
			acc += p
			if x < acc {
				break
			}
		}
		out = append(out, pick)
	}
	return out
}

// Lifted is the first-order reduction of a k-order sequence: a
// markov.Sequence over tuple nodes, plus the mapping needed to lift
// transducers and project strings.
type Lifted struct {
	// Seq is the first-order Markov sequence over tuple nodes.
	Seq *markov.Sequence
	// Tuples is the tuple alphabet; tuple i's components are Components[i].
	Tuples *automata.Alphabet
	// Components maps each tuple symbol to its underlying Σ symbols
	// (length ≤ k; shorter tuples occur in the first k−1 positions).
	Components [][]automata.Symbol
	// Base is the original node alphabet Σ.
	Base *automata.Alphabet
}

// Lift reduces the k-order sequence to first order. Tuple node t at
// position i encodes the window (S_{i−k+1..i}) (shorter near the start);
// transitions extend the window and drop its oldest entry. Only reachable
// tuples are materialized.
func (s *Sequence) Lift() *Lifted {
	tuples := &automata.Alphabet{}
	var components [][]automata.Symbol
	index := map[string]automata.Symbol{}
	intern := func(window []automata.Symbol) automata.Symbol {
		k := historyKey(window)
		if sym, ok := index[k]; ok {
			return sym
		}
		names := make([]string, len(window))
		for i, w := range window {
			names[i] = s.Nodes.Name(w)
		}
		sym := tuples.Add(strings.Join(names, "·"))
		index[k] = sym
		components = append(components, automata.CloneString(window))
		return sym
	}

	// First pass: discover reachable windows per position.
	windowsAt := make([][][]automata.Symbol, s.N)
	seen := make([]map[string]bool, s.N)
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	var explore func(i int, h []automata.Symbol)
	explore = func(i int, h []automata.Symbol) {
		if i == s.N {
			return
		}
		dist := s.Dist(i, h)
		for sym, p := range dist {
			if p == 0 {
				continue
			}
			h2 := append(automata.CloneString(h), automata.Symbol(sym))
			w := s.truncate(i+1, h2)
			k := historyKey(w)
			if !seen[i][k] {
				seen[i][k] = true
				windowsAt[i] = append(windowsAt[i], automata.CloneString(w))
			}
			explore(i+1, w)
		}
	}
	explore(0, nil)

	// Intern all windows so the tuple alphabet is complete before building
	// the sequence.
	for _, ws := range windowsAt {
		for _, w := range ws {
			intern(w)
		}
	}
	seq := markov.New(tuples, s.N)

	// Initial distribution: windows of length 1 at position 0.
	dist0 := s.Dist(0, nil)
	for sym, p := range dist0 {
		if p == 0 {
			continue
		}
		seq.Initial[intern([]automata.Symbol{automata.Symbol(sym)})] = p
	}
	// Transitions.
	for i := 0; i < s.N-1; i++ {
		for _, w := range windowsAt[i] {
			from := intern(w)
			dist := s.Dist(i+1, w)
			row := seq.Trans[i][from]
			for sym, p := range dist {
				if p == 0 {
					continue
				}
				h2 := append(automata.CloneString(w), automata.Symbol(sym))
				to := intern(s.truncate(i+2, h2))
				row[to] += p
			}
		}
		// Unreachable tuple rows: self-loop for stochasticity.
		for t := range seq.Trans[i] {
			sum := 0.0
			for _, p := range seq.Trans[i][t] {
				sum += p
			}
			if sum == 0 {
				seq.Trans[i][t][t] = 1
			}
		}
	}
	if err := seq.Validate(); err != nil {
		panic(fmt.Sprintf("korder: lifted sequence invalid: %v", err))
	}
	return &Lifted{Seq: seq, Tuples: tuples, Components: components, Base: s.Nodes}
}

// LiftString maps a base string to its tuple string (the window at each
// position). It panics if a window was never materialized (i.e. the
// string has probability zero).
func (l *Lifted) LiftString(str []automata.Symbol) []automata.Symbol {
	out := make([]automata.Symbol, len(str))
	for i := range str {
		start := 0
		// window length at position i (0-based) is min(i+1, k), where k is
		// recoverable from the longest component.
		k := len(l.Components[len(l.Components)-1])
		if i+1 > k {
			start = i + 1 - k
		}
		w := str[start : i+1]
		names := make([]string, len(w))
		for j, s := range w {
			names[j] = l.Base.Name(s)
		}
		sym, ok := l.Tuples.Symbol(strings.Join(names, "·"))
		if !ok {
			panic("korder: string passes through an unreachable window")
		}
		out[i] = sym
	}
	return out
}

// LiftTransducer lifts a transducer over Σ to one over the tuple nodes:
// each tuple is read as its last component. Answers and confidences are
// preserved: s →[A^ω]→ o over the k-order sequence iff
// lift(s) →[lift(A^ω)]→ o over the lifted sequence, with equal
// probabilities.
func (l *Lifted) LiftTransducer(t *transducer.Transducer) *transducer.Transducer {
	lt := transducer.New(l.Tuples, t.Out, t.NumStates(), t.Start())
	for q := 0; q < t.NumStates(); q++ {
		lt.SetAccepting(q, t.Accepting(q))
	}
	for _, tup := range l.Tuples.Symbols() {
		comp := l.Components[tup]
		last := comp[len(comp)-1]
		// The lifted symbol's base name is the component's name in Σ; find
		// the matching input symbol of t by name.
		base, ok := t.In.Symbol(l.Base.Name(last))
		if !ok {
			continue
		}
		for q := 0; q < t.NumStates(); q++ {
			for _, q2 := range t.Succ(q, base) {
				lt.AddTransition(q, tup, q2, t.Emit(q, base, q2))
			}
		}
	}
	return lt
}
