package korder

import (
	"math"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/conf"
	"markovseq/internal/transducer"
)

// randomKOrder builds a random fully-specified k-order sequence.
func randomKOrder(ab *automata.Alphabet, order, n int, rng *rand.Rand) *Sequence {
	s := New(ab, order, n)
	var fill func(i int, h []automata.Symbol)
	fill = func(i int, h []automata.Symbol) {
		if i == n {
			return
		}
		th := s.truncate(i, h)
		if s.Dist(i, th) == nil {
			dist := make([]float64, ab.Size())
			z := 0.0
			for j := range dist {
				if rng.Intn(3) != 0 {
					dist[j] = rng.Float64()
					z += dist[j]
				}
			}
			if z == 0 {
				dist[rng.Intn(len(dist))] = 1
				z = 1
			}
			for j := range dist {
				dist[j] /= z
			}
			s.Set(i, th, dist)
		}
		for sym, p := range s.Dist(i, th) {
			if p == 0 {
				continue
			}
			fill(i+1, append(h, automata.Symbol(sym)))
		}
	}
	fill(0, nil)
	return s
}

// enumerate walks the support of a k-order sequence.
func enumerate(s *Sequence, fn func(str []automata.Symbol, p float64)) {
	var rec func(i int, h []automata.Symbol, p float64)
	rec = func(i int, h []automata.Symbol, p float64) {
		if i == s.N {
			fn(h, p)
			return
		}
		for sym, q := range s.Dist(i, h) {
			if q == 0 {
				continue
			}
			rec(i+1, append(automata.CloneString(h), automata.Symbol(sym)), p*q)
		}
	}
	rec(0, nil, 1)
}

func TestValidateAndTotalMass(t *testing.T) {
	ab := automata.MustAlphabet("a", "b")
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		order := 1 + rng.Intn(3)
		n := 1 + rng.Intn(5)
		s := randomKOrder(ab, order, n, rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := 0.0
		enumerate(s, func(str []automata.Symbol, p float64) {
			total += p
			if got := s.Prob(str); math.Abs(got-p) > 1e-12 {
				t.Fatalf("trial %d: Prob(%v) = %v, want %v", trial, str, got, p)
			}
		})
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("trial %d: total mass %v", trial, total)
		}
	}
}

func TestValidateRejectsBadRows(t *testing.T) {
	ab := automata.MustAlphabet("a", "b")
	s := New(ab, 2, 2)
	s.Set(0, nil, []float64{0.5, 0.5})
	// Missing distribution for reachable history.
	if err := s.Validate(); err == nil {
		t.Fatal("missing history should fail")
	}
	s.Set(1, []automata.Symbol{0}, []float64{0.3, 0.3})
	if err := s.Validate(); err == nil {
		t.Fatal("sub-stochastic row should fail")
	}
}

// TestLiftPreservesProbabilities: the lifted first-order sequence assigns
// the same probability to the lifted string as the k-order original.
func TestLiftPreservesProbabilities(t *testing.T) {
	ab := automata.MustAlphabet("a", "b", "c")
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		order := 1 + rng.Intn(3)
		n := 1 + rng.Intn(5)
		s := randomKOrder(ab, order, n, rng)
		l := s.Lift()
		total := 0.0
		enumerate(s, func(str []automata.Symbol, p float64) {
			lifted := l.LiftString(str)
			if got := l.Seq.Prob(lifted); math.Abs(got-p) > 1e-12 {
				t.Fatalf("trial %d: lifted Prob(%v) = %v, want %v", trial, str, got, p)
			}
			total += p
		})
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("trial %d: support mass %v", trial, total)
		}
	}
}

// TestLiftPreservesConfidences: footnote 3 in action — the confidence of
// every answer of a transducer over the k-order sequence (computed by
// brute force) equals the confidence of the lifted transducer over the
// lifted sequence (computed by the Theorem 4.6 DP).
func TestLiftPreservesConfidences(t *testing.T) {
	ab := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		order := 2
		n := 2 + rng.Intn(3)
		s := randomKOrder(ab, order, n, rng)
		// Random deterministic transducer over the base alphabet.
		tr := transducer.New(ab, out, 2, 0)
		for q := 0; q < 2; q++ {
			tr.SetAccepting(q, rng.Intn(2) == 0)
			for _, sym := range ab.Symbols() {
				if rng.Intn(4) == 0 {
					continue
				}
				var e []automata.Symbol
				if rng.Intn(2) == 0 {
					e = []automata.Symbol{automata.Symbol(rng.Intn(out.Size()))}
				}
				tr.AddTransition(q, sym, rng.Intn(2), e)
			}
		}
		// Brute-force answers over the k-order sequence.
		want := map[string]float64{}
		enumerate(s, func(str []automata.Symbol, p float64) {
			if o, ok := tr.TransduceDet(str); ok {
				want[automata.StringKey(o)] += p
			}
		})
		l := s.Lift()
		lt := l.LiftTransducer(tr)
		if !lt.IsDeterministic() {
			t.Fatal("lift must preserve determinism")
		}
		for key, w := range want {
			o := parseKey(key)
			if got := conf.Det(lt, l.Seq, o); math.Abs(got-w) > 1e-9 {
				t.Fatalf("trial %d: lifted conf(%v) = %v, want %v", trial, o, got, w)
			}
		}
	}
}

func TestSampleInSupport(t *testing.T) {
	ab := automata.MustAlphabet("a", "b")
	rng := rand.New(rand.NewSource(9))
	s := randomKOrder(ab, 2, 5, rng)
	for i := 0; i < 50; i++ {
		str := s.Sample(rng)
		if s.Prob(str) <= 0 {
			t.Fatalf("sampled string %v has zero probability", str)
		}
	}
}

func parseKey(key string) []automata.Symbol {
	return automata.ParseKey(key)
}
