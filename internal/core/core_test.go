package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/paperex"
	"markovseq/internal/regex"
	"markovseq/internal/sproj"
	"markovseq/internal/transducer"
)

func TestClassification(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)

	// Figure 2: deterministic (selective, non-uniform).
	e, err := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	if err != nil {
		t.Fatal(err)
	}
	if e.Plan().Class != ClassDeterministic {
		t.Fatalf("class = %v", e.Plan().Class)
	}
	if e.Plan().Hard {
		t.Fatal("deterministic class is not hard")
	}

	// A Mealy machine.
	mealy := transducer.New(nodes, outs, 1, 0)
	mealy.SetAccepting(0, true)
	one := []automata.Symbol{outs.MustSymbol("1")}
	for _, s := range nodes.Symbols() {
		mealy.AddTransition(0, s, 0, one)
	}
	e2, err := NewTransducerEngine(mealy, m)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Plan().Class != ClassMealy {
		t.Fatalf("class = %v", e2.Plan().Class)
	}

	// Uniform nondeterministic.
	und := transducer.New(nodes, outs, 2, 0)
	und.SetAccepting(0, true)
	und.SetAccepting(1, true)
	for _, s := range nodes.Symbols() {
		und.AddTransition(0, s, 0, one)
		und.AddTransition(0, s, 1, one)
		und.AddTransition(1, s, 0, one)
	}
	e3, _ := NewTransducerEngine(und, m)
	if e3.Plan().Class != ClassUniform {
		t.Fatalf("class = %v", e3.Plan().Class)
	}

	// General (hard).
	hard := transducer.New(nodes, outs, 2, 0)
	hard.SetAccepting(0, true)
	hard.SetAccepting(1, true)
	for _, s := range nodes.Symbols() {
		hard.AddTransition(0, s, 0, one)
		hard.AddTransition(0, s, 1, nil)
		hard.AddTransition(1, s, 0, one)
	}
	e4, _ := NewTransducerEngine(hard, m)
	if e4.Plan().Class != ClassGeneral || !e4.Plan().Hard {
		t.Fatalf("plan = %+v", e4.Plan())
	}
	if _, err := e4.Confidence(outs.MustParseString("1 1"), 0); err == nil {
		t.Fatal("hard class must refuse exact confidence")
	}
	// ...but estimation works.
	est := e4.EstimateConfidence(outs.MustParseString("1 1 1 1 1"), 2000, rand.New(rand.NewSource(1)))
	if est < 0 || est > 1 {
		t.Fatalf("estimate = %v", est)
	}
}

func TestExplainMentionsTheorems(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	e, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	ex := e.Explain()
	for _, want := range []string{"Theorem 4.6", "Theorem 4.3", "deterministic"} {
		if !strings.Contains(ex, want) {
			t.Fatalf("Explain missing %q:\n%s", want, ex)
		}
	}
	ab := automata.Chars("ab")
	p := sproj.Simple(regex.MustCompileDFA("a+", ab))
	mm := markov.Uniform(ab, 4)
	ei, _ := NewSProjectorEngine(p, mm, true)
	if !strings.Contains(ei.Explain(), "Theorem 5.7") {
		t.Fatalf("indexed Explain missing Theorem 5.7:\n%s", ei.Explain())
	}
	es, _ := NewSProjectorEngine(p, mm, false)
	if !strings.Contains(es.Explain(), "Theorem 5.5") {
		t.Fatalf("plain Explain missing Theorem 5.5:\n%s", es.Explain())
	}
}

func TestEngineEvaluation(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	e, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)

	c, err := e.Confidence(outs.MustParseString("1 2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-paperex.Conf12) > 1e-9 {
		t.Fatalf("conf = %v", c)
	}
	top := e.TopK(2)
	if len(top) != 2 || outs.FormatString(top[0].Output) != "12" || top[0].Kind != "E_max" {
		t.Fatalf("TopK = %v", top)
	}
	all := e.Enumerate(0)
	if len(all) != 6 {
		t.Fatalf("Enumerate = %d answers", len(all))
	}
	if !e.IsAnswer(outs.MustParseString("1 2")) || e.IsAnswer(outs.MustParseString("λ λ λ")) {
		t.Fatal("IsAnswer misbehaves")
	}
}

func TestSProjectorEngine(t *testing.T) {
	ab := automata.Chars("ab")
	p := sproj.Simple(regex.MustCompileDFA("a+", ab))
	m := markov.Homogeneous(ab, 4, []float64{0.5, 0.5}, [][]float64{{0.6, 0.4}, {0.3, 0.7}})

	idx, err := NewSProjectorEngine(p, m, true)
	if err != nil {
		t.Fatal(err)
	}
	top := idx.TopK(3)
	if len(top) == 0 || top[0].Kind != "confidence" || top[0].Index < 1 {
		t.Fatalf("indexed TopK = %v", top)
	}
	ci, err := idx.Confidence(top[0].Output, top[0].Index)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ci-top[0].Score) > 1e-9 {
		t.Fatalf("indexed confidence %v vs score %v", ci, top[0].Score)
	}
	if _, err := idx.Confidence(top[0].Output, 0); err == nil {
		t.Fatal("indexed engine requires an index")
	}

	plain, err := NewSProjectorEngine(p, m, false)
	if err != nil {
		t.Fatal(err)
	}
	ptop := plain.TopK(3)
	if len(ptop) == 0 || ptop[0].Kind != "I_max" {
		t.Fatalf("plain TopK = %v", ptop)
	}
	// Engine estimation also works for s-projectors.
	est := plain.EstimateConfidence(ptop[0].Output, 2000, rand.New(rand.NewSource(2)))
	c, _ := plain.Confidence(ptop[0].Output, 0)
	if math.Abs(est-c) > 0.1 {
		t.Fatalf("estimate %v far from exact %v", est, c)
	}
}

func TestEngineRejectsMismatches(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	other := automata.Chars("ab")
	m := markov.Uniform(other, 3)
	if _, err := NewTransducerEngine(paperex.Figure2(nodes, outs), m); err == nil {
		t.Fatal("alphabet size mismatch should be rejected")
	}
	bad := markov.New(nodes, 2) // invalid: all-zero rows
	if _, err := NewTransducerEngine(paperex.Figure2(nodes, outs), bad); err == nil {
		t.Fatal("invalid sequence should be rejected")
	}
}

func TestTopKWithConfidence(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	e, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	res := e.TopKWithConfidence(3)
	if len(res) != 3 {
		t.Fatalf("got %d", len(res))
	}
	if outs.FormatString(res[0].Output) != "12" || math.Abs(res[0].Conf-paperex.Conf12) > 1e-9 {
		t.Fatalf("top = %v conf %v", res[0].Output, res[0].Conf)
	}
	// The hard class leaves NaN.
	one := []automata.Symbol{outs.MustSymbol("1")}
	hard := transducer.New(nodes, outs, 2, 0)
	hard.SetAccepting(0, true)
	hard.SetAccepting(1, true)
	for _, s := range nodes.Symbols() {
		hard.AddTransition(0, s, 0, one)
		hard.AddTransition(0, s, 1, nil)
		hard.AddTransition(1, s, 0, one)
	}
	eh, _ := NewTransducerEngine(hard, m)
	hres := eh.TopKWithConfidence(1)
	if len(hres) != 1 || !math.IsNaN(hres[0].Conf) {
		t.Fatalf("hard class should leave NaN, got %v", hres)
	}
}
