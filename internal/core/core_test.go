package core

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/paperex"
	"markovseq/internal/regex"
	"markovseq/internal/sproj"
	"markovseq/internal/testutil"
	"markovseq/internal/transducer"
)

func TestClassification(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)

	// Figure 2: deterministic (selective, non-uniform).
	e, err := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	if err != nil {
		t.Fatal(err)
	}
	if e.Plan().Class != ClassDeterministic {
		t.Fatalf("class = %v", e.Plan().Class)
	}
	if e.Plan().Hard {
		t.Fatal("deterministic class is not hard")
	}

	// A Mealy machine.
	mealy := transducer.New(nodes, outs, 1, 0)
	mealy.SetAccepting(0, true)
	one := []automata.Symbol{outs.MustSymbol("1")}
	for _, s := range nodes.Symbols() {
		mealy.AddTransition(0, s, 0, one)
	}
	e2, err := NewTransducerEngine(mealy, m)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Plan().Class != ClassMealy {
		t.Fatalf("class = %v", e2.Plan().Class)
	}

	// Uniform nondeterministic.
	und := transducer.New(nodes, outs, 2, 0)
	und.SetAccepting(0, true)
	und.SetAccepting(1, true)
	for _, s := range nodes.Symbols() {
		und.AddTransition(0, s, 0, one)
		und.AddTransition(0, s, 1, one)
		und.AddTransition(1, s, 0, one)
	}
	e3, _ := NewTransducerEngine(und, m)
	if e3.Plan().Class != ClassUniform {
		t.Fatalf("class = %v", e3.Plan().Class)
	}

	// General (hard).
	hard := transducer.New(nodes, outs, 2, 0)
	hard.SetAccepting(0, true)
	hard.SetAccepting(1, true)
	for _, s := range nodes.Symbols() {
		hard.AddTransition(0, s, 0, one)
		hard.AddTransition(0, s, 1, nil)
		hard.AddTransition(1, s, 0, one)
	}
	e4, _ := NewTransducerEngine(hard, m)
	if e4.Plan().Class != ClassGeneral || !e4.Plan().Hard {
		t.Fatalf("plan = %+v", e4.Plan())
	}
	if _, err := e4.Confidence(outs.MustParseString("1 1"), 0); err == nil {
		t.Fatal("hard class must refuse exact confidence")
	}
	// ...but estimation works.
	est := e4.EstimateConfidence(outs.MustParseString("1 1 1 1 1"), 2000, rand.New(rand.NewSource(1)))
	if est < 0 || est > 1 {
		t.Fatalf("estimate = %v", est)
	}
}

func TestExplainMentionsTheorems(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	e, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	ex := e.Explain()
	for _, want := range []string{"Theorem 4.6", "Theorem 4.3", "deterministic"} {
		if !strings.Contains(ex, want) {
			t.Fatalf("Explain missing %q:\n%s", want, ex)
		}
	}
	ab := automata.Chars("ab")
	p := sproj.Simple(regex.MustCompileDFA("a+", ab))
	mm := markov.Uniform(ab, 4)
	ei, _ := NewSProjectorEngine(p, mm, true)
	if !strings.Contains(ei.Explain(), "Theorem 5.7") {
		t.Fatalf("indexed Explain missing Theorem 5.7:\n%s", ei.Explain())
	}
	es, _ := NewSProjectorEngine(p, mm, false)
	if !strings.Contains(es.Explain(), "Theorem 5.5") {
		t.Fatalf("plain Explain missing Theorem 5.5:\n%s", es.Explain())
	}
}

func TestEngineEvaluation(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	e, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)

	c, err := e.Confidence(outs.MustParseString("1 2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-paperex.Conf12) > 1e-9 {
		t.Fatalf("conf = %v", c)
	}
	top := e.TopK(2)
	if len(top) != 2 || outs.FormatString(top[0].Output) != "12" || top[0].Kind != "E_max" {
		t.Fatalf("TopK = %v", top)
	}
	all := e.Enumerate(0)
	if len(all) != 6 {
		t.Fatalf("Enumerate = %d answers", len(all))
	}
	if !e.IsAnswer(outs.MustParseString("1 2")) || e.IsAnswer(outs.MustParseString("λ λ λ")) {
		t.Fatal("IsAnswer misbehaves")
	}
}

func TestSProjectorEngine(t *testing.T) {
	ab := automata.Chars("ab")
	p := sproj.Simple(regex.MustCompileDFA("a+", ab))
	m := markov.Homogeneous(ab, 4, []float64{0.5, 0.5}, [][]float64{{0.6, 0.4}, {0.3, 0.7}})

	idx, err := NewSProjectorEngine(p, m, true)
	if err != nil {
		t.Fatal(err)
	}
	top := idx.TopK(3)
	if len(top) == 0 || top[0].Kind != "confidence" || top[0].Index < 1 {
		t.Fatalf("indexed TopK = %v", top)
	}
	ci, err := idx.Confidence(top[0].Output, top[0].Index)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ci-top[0].Score) > 1e-9 {
		t.Fatalf("indexed confidence %v vs score %v", ci, top[0].Score)
	}
	if _, err := idx.Confidence(top[0].Output, 0); err == nil {
		t.Fatal("indexed engine requires an index")
	}

	plain, err := NewSProjectorEngine(p, m, false)
	if err != nil {
		t.Fatal(err)
	}
	ptop := plain.TopK(3)
	if len(ptop) == 0 || ptop[0].Kind != "I_max" {
		t.Fatalf("plain TopK = %v", ptop)
	}
	// Engine estimation also works for s-projectors.
	est := plain.EstimateConfidence(ptop[0].Output, 2000, rand.New(rand.NewSource(2)))
	c, _ := plain.Confidence(ptop[0].Output, 0)
	if math.Abs(est-c) > 0.1 {
		t.Fatalf("estimate %v far from exact %v", est, c)
	}
}

func TestEngineRejectsMismatches(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	other := automata.Chars("ab")
	m := markov.Uniform(other, 3)
	if _, err := NewTransducerEngine(paperex.Figure2(nodes, outs), m); err == nil {
		t.Fatal("alphabet size mismatch should be rejected")
	}
	bad := markov.New(nodes, 2) // invalid: all-zero rows
	if _, err := NewTransducerEngine(paperex.Figure2(nodes, outs), bad); err == nil {
		t.Fatal("invalid sequence should be rejected")
	}
}

func TestTopKWithConfidence(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	e, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	res := e.TopKWithConfidence(3)
	if len(res) != 3 {
		t.Fatalf("got %d", len(res))
	}
	if outs.FormatString(res[0].Output) != "12" || math.Abs(res[0].Conf-paperex.Conf12) > 1e-9 {
		t.Fatalf("top = %v conf %v", res[0].Output, res[0].Conf)
	}
	// The hard class leaves NaN.
	one := []automata.Symbol{outs.MustSymbol("1")}
	hard := transducer.New(nodes, outs, 2, 0)
	hard.SetAccepting(0, true)
	hard.SetAccepting(1, true)
	for _, s := range nodes.Symbols() {
		hard.AddTransition(0, s, 0, one)
		hard.AddTransition(0, s, 1, nil)
		hard.AddTransition(1, s, 0, one)
	}
	eh, _ := NewTransducerEngine(hard, m)
	hres := eh.TopKWithConfidence(1)
	if len(hres) != 1 || !math.IsNaN(hres[0].Conf) {
		t.Fatalf("hard class should leave NaN, got %v", hres)
	}
}

// TestPreparedBindMatchesNew: binding a prepared query gives the same
// plan and answers as direct construction, and a Prepared serves many
// sequences.
func TestPreparedBindMatchesNew(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	q := paperex.Figure2(nodes, outs)

	pr := PrepareTransducer(q)
	if pr.Plan().Class != ClassDeterministic {
		t.Fatalf("prepared class = %v", pr.Plan().Class)
	}
	direct, err := NewTransducerEngine(q, m)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := pr.Bind(m)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Plan() != direct.Plan() {
		t.Fatalf("plans differ: %+v vs %+v", bound.Plan(), direct.Plan())
	}
	dt, bt := direct.TopK(3), bound.TopK(3)
	if len(dt) != len(bt) {
		t.Fatalf("answer counts differ: %d vs %d", len(dt), len(bt))
	}
	for i := range dt {
		if outs.FormatString(dt[i].Output) != outs.FormatString(bt[i].Output) ||
			math.Abs(dt[i].Score-bt[i].Score) > 1e-12 {
			t.Fatalf("answer %d differs: %v vs %v", i, dt[i], bt[i])
		}
	}
	// One Prepared binds windows of the sequence too.
	w, err := pr.BindValidated(m.Window(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.TopK(1)) == 0 {
		t.Fatal("window engine returned no answers")
	}
	// Alphabet mismatch is still caught at bind time.
	if _, err := pr.Bind(markov.Uniform(automata.Chars("ab"), 3)); err == nil {
		t.Fatal("bind should reject mismatched alphabets")
	}
}

// TestEngineTopKMemoized: growing k extends the memo consistently, and a
// repeated call returns the identical prefix.
func TestEngineTopKMemoized(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	e, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	fresh, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)

	small := e.TopK(2)
	big := e.TopK(5)
	if len(small) != 2 || len(big) < len(small) {
		t.Fatalf("lens: %d then %d", len(small), len(big))
	}
	for i := range small {
		if outs.FormatString(small[i].Output) != outs.FormatString(big[i].Output) {
			t.Fatalf("memoized prefix changed at %d", i)
		}
	}
	want := fresh.TopK(5)
	if len(want) != len(big) {
		t.Fatalf("memoized enumeration diverged from fresh: %d vs %d", len(big), len(want))
	}
	for i := range want {
		if outs.FormatString(want[i].Output) != outs.FormatString(big[i].Output) ||
			math.Abs(want[i].Score-big[i].Score) > 1e-12 {
			t.Fatalf("answer %d differs from fresh engine", i)
		}
	}
	// Enumerate memoizes likewise: limit extension agrees with one-shot.
	e2, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	part := e2.Enumerate(2)
	all := e2.Enumerate(0)
	oneShot, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	wantAll := oneShot.Enumerate(0)
	if len(part) != 2 || len(all) != len(wantAll) {
		t.Fatalf("enumerate memo sizes: part=%d all=%d want=%d", len(part), len(all), len(wantAll))
	}
	for i := range wantAll {
		if outs.FormatString(all[i]) != outs.FormatString(wantAll[i]) {
			t.Fatalf("enumerate order changed at %d", i)
		}
	}
}

// TestEngineConcurrentReaders: one engine, many goroutines, all read
// modes at once (checked under -race).
func TestEngineConcurrentReaders(t *testing.T) {
	testutil.CheckLeaks(t)
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	e, _ := NewTransducerEngine(paperex.Figure2(nodes, outs), m)
	o := outs.MustParseString("1 2")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20; i++ {
				switch (g + i) % 5 {
				case 0:
					if top := e.TopK(1 + i%4); len(top) == 0 {
						t.Error("TopK empty")
					}
				case 1:
					if len(e.Enumerate(3)) == 0 {
						t.Error("Enumerate empty")
					}
				case 2:
					if c, err := e.Confidence(o, 0); err != nil || c <= 0 {
						t.Errorf("Confidence = %v, %v", c, err)
					}
				case 3:
					if !e.IsAnswer(o) {
						t.Error("IsAnswer false")
					}
				default:
					e.EstimateConfidence(o, 10, rng)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDenseKernelsOptionAgrees pins the WithDenseKernels escape hatch:
// the dense reference DPs and the sparse kernels must produce the same
// confidences, and the option must actually suppress table compilation.
func TestDenseKernelsOptionAgrees(t *testing.T) {
	nodes := paperex.Nodes()
	outs := paperex.Outputs()
	m := paperex.Figure1(nodes)
	one := []automata.Symbol{outs.MustSymbol("1")}

	und := transducer.New(nodes, outs, 2, 0)
	und.SetAccepting(0, true)
	und.SetAccepting(1, true)
	for _, s := range nodes.Symbols() {
		und.AddTransition(0, s, 0, one)
		und.AddTransition(0, s, 1, one)
		und.AddTransition(1, s, 0, one)
	}

	for name, tr := range map[string]*transducer.Transducer{
		"deterministic": paperex.Figure2(nodes, outs),
		"uniform":       und,
	} {
		sparseP := PrepareTransducer(tr)
		denseP := PrepareTransducer(tr, WithDenseKernels())
		if denseP.dt != nil || denseP.nt != nil {
			t.Fatalf("%s: WithDenseKernels still compiled kernel tables", name)
		}
		if sparseP.dt == nil && sparseP.nt == nil {
			t.Fatalf("%s: default preparation compiled no kernel tables", name)
		}
		sparse, err := sparseP.Bind(m)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := denseP.Bind(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range sparse.TopK(4) {
			cs, err := sparse.Confidence(a.Output, a.Index)
			if err != nil {
				t.Fatal(err)
			}
			cd, err := dense.Confidence(a.Output, a.Index)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(cs-cd) > 1e-12 {
				t.Fatalf("%s: sparse %v vs dense %v on %v", name, cs, cd, a.Output)
			}
		}
	}
}
