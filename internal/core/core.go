// Package core is the query-evaluation engine: it classifies a query
// against the tractability map of Kimelfeld & Ré (PODS 2010), Table 2,
// selects the algorithms accordingly, and exposes the choice as an
// explainable plan. It is the layer a database system (package lahar, the
// msq facade, the CLI) builds on.
//
// Classification drives three decisions:
//
//   - confidence: Theorem 4.6's DP (deterministic), its k-uniform fast
//     path, Theorem 4.8's subset DP (uniform nondeterministic),
//     Theorem 5.5 (s-projector), Theorem 5.8 (indexed s-projector), or —
//     for the FP^#P-complete remainder — refusal with an optional Monte
//     Carlo estimate;
//   - ranking: exact decreasing confidence (Theorem 5.7, indexed
//     s-projectors), I_max with ratio n (Theorem 5.2, s-projectors), or
//     E_max with ratio |Σ|ⁿ (Theorem 4.3, everything else);
//   - enumeration: the unranked polynomial-delay traversal (Theorem 4.1)
//     is always available.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"markovseq/internal/automata"
	"markovseq/internal/conf"
	"markovseq/internal/enum"
	"markovseq/internal/kernel"
	"markovseq/internal/markov"
	"markovseq/internal/ranked"
	"markovseq/internal/sproj"
	"markovseq/internal/transducer"
)

// Class is the query class per the columns of Table 2.
type Class int

const (
	// ClassMealy: deterministic, non-selective, 1-uniform.
	ClassMealy Class = iota
	// ClassDeterministic: the underlying automaton is deterministic.
	ClassDeterministic
	// ClassUniform: nondeterministic with k-uniform emission.
	ClassUniform
	// ClassGeneral: nondeterministic, non-uniform (the FP^#P-complete
	// confidence class).
	ClassGeneral
	// ClassSProjector: a substring projector [B]A[E].
	ClassSProjector
	// ClassIndexedSProjector: an indexed substring projector [B]↓A[E].
	ClassIndexedSProjector
)

func (c Class) String() string {
	switch c {
	case ClassMealy:
		return "Mealy machine"
	case ClassDeterministic:
		return "deterministic transducer"
	case ClassUniform:
		return "uniform-emission nondeterministic transducer"
	case ClassGeneral:
		return "general (nondeterministic, non-uniform) transducer"
	case ClassSProjector:
		return "s-projector"
	case ClassIndexedSProjector:
		return "indexed s-projector"
	default:
		return "unknown"
	}
}

// Plan records the algorithm selection for a query.
type Plan struct {
	// Class is the query's Table 2 column.
	Class Class
	// Confidence names the confidence algorithm ("" when the class is
	// FP^#P-complete and only estimation applies).
	Confidence string
	// Ranking names the ranked-enumeration algorithm.
	Ranking string
	// Ratio describes the worst-case approximation ratio of the ranked
	// order w.r.t. true confidence.
	Ratio string
	// Hard is set when exact confidence computation is FP^#P-complete.
	Hard bool
}

// Explain renders the plan as the kind of EXPLAIN output a database user
// expects.
func (p Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class:      %s\n", p.Class)
	if p.Hard {
		fmt.Fprintf(&b, "confidence: FP^#P-complete (Theorem 4.9); Monte Carlo additive estimation available\n")
	} else {
		fmt.Fprintf(&b, "confidence: %s\n", p.Confidence)
	}
	fmt.Fprintf(&b, "ranking:    %s\n", p.Ranking)
	fmt.Fprintf(&b, "ratio:      %s\n", p.Ratio)
	return b.String()
}

// Answer is one evaluated answer.
type Answer struct {
	Output []automata.Symbol
	// Index is the occurrence index for indexed s-projector answers.
	Index int
	// Score is the ranking score (confidence, I_max, or E_max — see Kind).
	Score float64
	Kind  string
}

// PrepareOption configures query preparation.
type PrepareOption func(*prepConfig)

type prepConfig struct {
	dense             bool
	rankedWorkers     int
	exhaustiveRanked  bool
	eagerCheckpoints  bool
	compactTables     bool
	fromScratchRanked bool
}

// WithRankedWorkers bounds the speculative-resolution worker pool of the
// ranked enumerators (Theorem 4.3 E_max and Lemma 5.10 I_max): when an
// engine's TopK needs to resolve Lawler subproblems, up to n of them are
// resolved concurrently. Values ≤ 1 select the sequential reference
// behavior. The answer order is identical either way — parallelism
// changes only when subproblems are resolved, never what is emitted.
// Values < 1 (including accidental zero or negative configuration) are
// clamped to the sequential behavior rather than producing a pool that
// never resolves anything.
func WithRankedWorkers(n int) PrepareOption {
	return func(c *prepConfig) {
		if n < 1 {
			n = 1
		}
		c.rankedWorkers = n
	}
}

// WithExhaustiveRanked disables the weight-pushed pruning of the ranked
// (E_max) kernels, selecting the exhaustive frontier sweep instead. The
// pruned path is bit-identical to the exhaustive one by construction
// (see kernel/constrained.go); this option is the differential
// reference and the escape hatch should a workload's bound computation
// cost more than the sweep it saves.
func WithExhaustiveRanked() PrepareOption {
	return func(c *prepConfig) { c.exhaustiveRanked = true }
}

// WithEagerCheckpoints disables the lazy materialization of ranked
// prefix checkpoints: each checkpoint's exact-prefix DP is built when the
// checkpoint is first requested rather than when a resolve first reads a
// layer, while weight-pushed pruning stays active. Lazy handles resume
// to bit-identical answers by construction (see kernel/constrained.go);
// this option is a differential reference and an escape hatch for
// callers that prefer build cost up front. Implied by
// WithExhaustiveRanked.
func WithEagerCheckpoints() PrepareOption {
	return func(c *prepConfig) { c.eagerCheckpoints = true }
}

// WithCompactTables lets preparation pick the failure-transition
// (default-row) encoding for the base query tables when it is smaller
// than the dense q×|Σ| offset matrix — large sparse alphabets shrink
// severalfold. Lookup switches from one indexed load to a short binary
// search plus default-row fallback, so it is opt-in.
func WithCompactTables() PrepareOption {
	return func(c *prepConfig) { c.compactTables = true }
}

// WithFromScratchRanked disables the cross-append carry of ranked
// enumeration state: engines produced by ExtendValidated rebuild their
// Lawler tree from the unconstrained root instead of reseeding it from
// the predecessor's resolved tree. The carried and from-scratch paths
// agree rank by rank on bit-identical scores (set-identically within
// exactly tied score classes); this option is the differential
// reference for that contract and the escape hatch should a workload's
// reseed bookkeeping cost more than the resolves it saves.
func WithFromScratchRanked() PrepareOption {
	return func(c *prepConfig) { c.fromScratchRanked = true }
}

// WithDenseKernels selects the dense reference DP implementations
// (conf.DetDense, conf.DetUniformDense, conf.UniformLazy) instead of the
// sparse frontier kernels of internal/kernel. The dense paths scan every
// (node, state, output-position) cell and allocate fresh tables per
// position; they exist for differential testing and benchmarking, and
// this option is how a caller pins them.
func WithDenseKernels() PrepareOption {
	return func(c *prepConfig) { c.dense = true }
}

// Prepared is a query compiled ahead of binding to a sequence: the
// Table-2 classification, the plan, (for s-projectors) the equivalent
// transducer, and the flat sparse-kernel tables of the confidence DPs
// are computed exactly once, so serving layers that evaluate the same
// query over many sequences — or many windows of one sequence — pay the
// compilation cost once. A Prepared is immutable and safe for concurrent
// use by any number of Bind calls.
type Prepared struct {
	t       *transducer.Transducer // nil for s-projector queries
	p       *sproj.SProjector      // nil for transducer queries
	et      *transducer.Transducer // equivalent transducer for s-projector queries
	indexed bool
	plan    Plan

	// Flat kernel tables, built at preparation time (nil when the class
	// does not use them or WithDenseKernels was given).
	dt         *kernel.DetTables // deterministic classes
	nt         *kernel.NFATables // uniform nondeterministic class
	uniformK   int
	hasUniform bool
	dense      bool

	// pt is the preprocessed (trimmed) equivalent transducer the
	// enumeration and membership paths run on: states unreachable from
	// the start or unable to reach acceptance are dropped at prepare time
	// (transducer.Preprocess), which the transduction relation — and with
	// it every score and tie — survives exactly. Classification and the
	// confidence DPs stay on the original query so plans read as written.
	pt *transducer.Transducer
	// baseNT is the flat base tables of pt, shared by the
	// constraint-incremental ranked enumeration, the unranked
	// enumeration's nonemptiness probes, and IsAnswer — none of which
	// materialize per-constraint products or rebuild tables per call.
	baseNT *kernel.NFATables
	// rankedWorkers bounds the enumerators' speculative resolution pool.
	rankedWorkers int
	// exhaustiveRanked pins the exhaustive (unpruned) ranked kernels;
	// eagerCheckpoints pins eager checkpoint materialization;
	// fromScratchRanked disables the cross-append ranked carry.
	exhaustiveRanked  bool
	eagerCheckpoints  bool
	fromScratchRanked bool
}

// PrepareTransducer classifies a transducer query (the columns of
// Table 2) without binding it to a sequence, and compiles the flat
// sparse-kernel tables the confidence DPs run on.
func PrepareTransducer(t *transducer.Transducer, opts ...PrepareOption) *Prepared {
	var cfg prepConfig
	for _, o := range opts {
		o(&cfg)
	}
	pr := &Prepared{t: t, dense: cfg.dense, rankedWorkers: cfg.rankedWorkers, exhaustiveRanked: cfg.exhaustiveRanked, eagerCheckpoints: cfg.eagerCheckpoints, fromScratchRanked: cfg.fromScratchRanked}
	k, uniform := t.UniformK()
	pr.uniformK, pr.hasUniform = k, uniform
	switch {
	case t.IsMealy():
		pr.plan = Plan{
			Class:      ClassMealy,
			Confidence: fmt.Sprintf("Theorem 4.6 k-uniform DP (k=%d)", k),
		}
	case t.IsDeterministic():
		algo := "Theorem 4.6 DP, O(|o|·n·|Σ|²·|Q|²)"
		if uniform {
			algo = fmt.Sprintf("Theorem 4.6 k-uniform DP (k=%d)", k)
		}
		pr.plan = Plan{Class: ClassDeterministic, Confidence: algo}
	case uniform:
		pr.plan = Plan{
			Class:      ClassUniform,
			Confidence: fmt.Sprintf("Theorem 4.8 subset DP (k=%d), O(n·k·|Σ|²·4^|Q|)", k),
		}
	default:
		pr.plan = Plan{Class: ClassGeneral, Hard: true}
	}
	if !cfg.dense {
		switch pr.plan.Class {
		case ClassMealy, ClassDeterministic:
			pr.dt = kernel.NewDetTables(t)
		case ClassUniform:
			if t.NumStates() <= kernel.MaxUniformStates {
				pr.nt = kernel.NewNFATables(t)
			}
		}
	}
	pr.plan.Ranking = "E_max Lawler–Murty enumeration (Theorem 4.3), polynomial delay"
	pr.plan.Ratio = "|Σ|^n-approximately decreasing confidence (worst-case optimal up to 2^{n^{1-δ}}, Theorem 4.4)"
	// Base tables for ranked enumeration, unranked enumeration, and
	// membership, built over the trimmed query. When trimming removed
	// nothing and the uniform-class confidence tables exist they are the
	// same object, so reuse them.
	pr.pt = transducer.Preprocess(t)
	if pr.nt != nil && pr.pt == t {
		pr.baseNT = pr.nt
	} else if cfg.compactTables {
		pr.baseNT = kernel.NewNFATablesAuto(pr.pt)
	} else {
		pr.baseNT = kernel.NewNFATables(pr.pt)
	}
	return pr
}

// PrepareSProjector classifies an s-projector query; indexed selects the
// [B]↓A[E] semantics. The equivalent transducer (used by unranked
// enumeration, membership, and Monte Carlo estimation) is built eagerly —
// along with its flat base tables — so Bind and the per-call paths never
// rebuild either.
func PrepareSProjector(p *sproj.SProjector, indexed bool, opts ...PrepareOption) *Prepared {
	var cfg prepConfig
	for _, o := range opts {
		o(&cfg)
	}
	pr := &Prepared{p: p, et: p.ToTransducer(), indexed: indexed, rankedWorkers: cfg.rankedWorkers, exhaustiveRanked: cfg.exhaustiveRanked, eagerCheckpoints: cfg.eagerCheckpoints, fromScratchRanked: cfg.fromScratchRanked}
	pr.pt = transducer.Preprocess(pr.et)
	if cfg.compactTables {
		pr.baseNT = kernel.NewNFATablesAuto(pr.pt)
	} else {
		pr.baseNT = kernel.NewNFATables(pr.pt)
	}
	if indexed {
		pr.plan = Plan{
			Class:      ClassIndexedSProjector,
			Confidence: "Theorem 5.8 DP, O(n·|Σ|²·|Q|²)",
			Ranking:    "exact decreasing confidence via DAG path enumeration (Theorem 5.7)",
			Ratio:      "exact order",
		}
	} else {
		pr.plan = Plan{
			Class:      ClassSProjector,
			Confidence: "Theorem 5.5 DP, O(n·|o|²·|Σ|²·|Q_B|²·4^{|Q_E|})",
			Ranking:    "I_max Lawler enumeration (Lemma 5.10)",
			Ratio:      "n-approximately decreasing confidence (Proposition 5.9 / Theorem 5.2)",
		}
	}
	return pr
}

// Plan returns the compiled plan.
func (pr *Prepared) Plan() Plan { return pr.plan }

// sweeperOpts assembles the ranked.Sweeper options matching this
// preparation: shared base tables plus the exhaustive escape hatch.
func (pr *Prepared) sweeperOpts() []ranked.Option {
	opts := []ranked.Option{ranked.WithTables(pr.baseNT)}
	if pr.exhaustiveRanked {
		opts = append(opts, ranked.WithExhaustive())
	}
	if pr.eagerCheckpoints {
		opts = append(opts, ranked.WithEagerCheckpoints())
	}
	return opts
}

// Bind attaches the prepared query to a sequence, validating the
// sequence and the alphabet agreement. The classification is reused, not
// recomputed.
func (pr *Prepared) Bind(m *markov.Sequence) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return pr.BindValidated(m)
}

// BindValidated is Bind without re-validating the sequence. Use it for
// sequences already known valid — e.g. the window marginals of a
// validated stream — where the O(n·|Σ|²) validation pass would dominate
// the per-window work.
func (pr *Prepared) BindValidated(m *markov.Sequence) (*Engine, error) {
	if pr.t != nil {
		if pr.t.In.Size() != m.Nodes.Size() {
			return nil, fmt.Errorf("core: transducer reads %d symbols, sequence has %d nodes",
				pr.t.In.Size(), m.Nodes.Size())
		}
	} else if pr.p.Alphabet().Size() != m.Nodes.Size() {
		return nil, fmt.Errorf("core: s-projector reads %d symbols, sequence has %d nodes",
			pr.p.Alphabet().Size(), m.Nodes.Size())
	}
	return &Engine{
		m: m, t: pr.t, p: pr.p, et: pr.et, indexed: pr.indexed, plan: pr.plan,
		dt: pr.dt, nt: pr.nt, uniformK: pr.uniformK, hasUniform: pr.hasUniform, dense: pr.dense,
		pt: pr.pt, baseNT: pr.baseNT, rankedWorkers: pr.rankedWorkers,
		exhaustiveRanked: pr.exhaustiveRanked, eagerCheckpoints: pr.eagerCheckpoints,
	}, nil
}

// ExtendValidated binds the prepared query to m — an already-validated
// extension of old's sequence — carrying old's ranked enumeration state
// across the append: the predecessor's resolved Lawler tree is reseeded
// against the grown sequence (ranked.ExtendEnumerator), so the first
// TopK on the new engine re-prices the answers already proven instead
// of re-enumerating the full stream, and unresolved subproblems re-enter
// bounded. old == nil (or an old engine that never ran TopK) yields an
// engine with nothing carried but ranked serving in extendable mode, so
// the next append can carry.
//
// The carry is skipped — plain extendable binding — under
// WithFromScratchRanked (the differential reference), and the engine
// falls back to ordinary pruned binding for preparations whose ranked
// path cannot retain complete state (WithExhaustiveRanked,
// WithEagerCheckpoints) and for s-projector queries, whose rankers are
// not Lawler-tree-based. The carried and from-scratch orders agree rank
// by rank on bit-identical scores, set-identically within exactly tied
// score classes.
func (pr *Prepared) ExtendValidated(old *Engine, m *markov.Sequence) (*Engine, error) {
	eng, err := pr.BindValidated(m)
	if err != nil {
		return nil, err
	}
	if pr.t == nil || pr.fromScratchRanked || pr.exhaustiveRanked || pr.eagerCheckpoints {
		return eng, nil
	}
	eng.rankedExtendable = true
	if old == nil {
		return eng, nil
	}
	// Holding old.mu keeps the carried tree consistent against a
	// concurrent drain of the predecessor.
	old.mu.Lock()
	oldEnum := old.rankedEnum
	if oldEnum == nil {
		oldEnum = old.rankedSeed
	}
	if oldEnum != nil {
		if ne, ok := ranked.ExtendEnumerator(oldEnum, m, pr.rankedWorkers); ok {
			eng.rankedSeed = ne
		}
	}
	old.mu.Unlock()
	return eng, nil
}

// Engine evaluates one query over one Markov sequence.
//
// Concurrency: an Engine is safe for concurrent use. The query, the
// sequence, and the plan are immutable after construction. Confidence,
// EstimateConfidence, IsAnswer, Plan and Explain are stateless — every
// call allocates its own DP tables — so any number of goroutines may
// call them at once. TopK, TopKWithConfidence and Enumerate memoize
// their enumeration state (the ranked/unranked answer prefixes built so
// far) under an internal mutex: concurrent calls serialize on that
// mutex, and repeated calls extend the memo instead of re-enumerating
// from scratch — this is what makes a cached engine cheap to serve.
// Callers must treat returned Answer.Output slices as read-only (they
// are shared with the memo), and must not share a *rand.Rand across
// concurrent EstimateConfidence calls.
type Engine struct {
	m       *markov.Sequence
	t       *transducer.Transducer // nil for s-projector queries
	p       *sproj.SProjector      // nil for transducer queries
	et      *transducer.Transducer // cached equivalent transducer for s-projector queries
	indexed bool
	plan    Plan

	// Kernel tables inherited from the Prepared (nil under
	// WithDenseKernels or when the class does not use them).
	dt         *kernel.DetTables
	nt         *kernel.NFATables
	uniformK   int
	hasUniform bool
	dense      bool

	// Preprocessed equivalent transducer, its base tables, and the
	// speculative worker count, inherited from the Prepared (see
	// Prepared.pt / Prepared.baseNT).
	pt               *transducer.Transducer
	baseNT           *kernel.NFATables
	rankedWorkers    int
	exhaustiveRanked bool
	eagerCheckpoints bool

	// rankedExtendable selects the append-extendable ranked serving
	// mode (ranked.WithExtendable): resolves run unpruned and the
	// enumerator retains its resolved tree so a successor engine built
	// by ExtendValidated can carry it across an append. Set by
	// ExtendValidated, never by Bind — one-shot engines keep the
	// weight-pushed pruned path.
	rankedExtendable bool

	// bounds are the weight-pushed potentials over (baseNT, sequence),
	// built on first ranked or membership use and shared by both (one
	// backward max-plus pass per binding); nil-valued while unbuilt and
	// permanently nil under WithExhaustiveRanked. The potentials are
	// append-variant — Row(i) looks forward to the end of the view — so
	// ensureBounds re-checks the stored sweep against the engine's view
	// epoch and rebuilds on mismatch: a stale sweep must never serve as
	// a pruning threshold. boundsMu serializes (re)builds only; readers
	// go through the atomic pointer.
	boundsMu sync.Mutex
	bounds   atomic.Pointer[kernel.Bounds]

	// mu guards the lazily-built enumeration memos below; everything
	// above is read-only after construction.
	mu sync.Mutex
	// topNext is the live ranked iterator (nil until first TopK);
	// topCache is the non-increasing answer prefix drawn from it so far.
	// A non-nil error from topNext means no answer was consumed and the
	// iterator can be retried with a live context.
	topNext  func(ctx context.Context) (Answer, bool, error)
	topCache []Answer
	topDone  bool
	// rankedSeed is an enumerator carried from a predecessor engine by
	// ExtendValidated, consumed (and cleared) by the first TopK;
	// rankedEnum is the live ranked enumerator once TopK has run, held
	// so ExtendValidated can carry it and PruneStats can report its
	// cross-append reuse counters.
	rankedSeed *ranked.Enumerator
	rankedEnum *ranked.Enumerator
	// enumIter / enumCache memoize the unranked enumeration likewise.
	enumIter  *enum.Enumerator
	enumCache [][]automata.Symbol
	enumDone  bool
}

// NewTransducerEngine classifies and wraps a transducer query.
func NewTransducerEngine(t *transducer.Transducer, m *markov.Sequence) (*Engine, error) {
	return PrepareTransducer(t).Bind(m)
}

// NewSProjectorEngine classifies and wraps an s-projector query; indexed
// selects the [B]↓A[E] semantics.
func NewSProjectorEngine(p *sproj.SProjector, m *markov.Sequence, indexed bool) (*Engine, error) {
	return PrepareSProjector(p, indexed).Bind(m)
}

// equivalent returns the transducer form of the query (the query itself,
// or the cached s-projector conversion).
func (e *Engine) equivalent() *transducer.Transducer {
	if e.t != nil {
		return e.t
	}
	return e.et
}

// ensureBounds returns the engine's shared weight-pushed potentials,
// computing them on first use; nil under WithExhaustiveRanked and for
// sequences too short for the backward sweep to pay for itself
// (kernel.BoundsMinN — the bind-per-window serving paths hit this).
//
// The potentials are append-variant, so the stored sweep is accepted
// only when it matches the engine's view epoch (kernel.MatchesView) and
// is rebuilt otherwise — the staleness audit guaranteeing that a sweep
// carried from a shorter sequence is never used as a pruning threshold.
func (e *Engine) ensureBounds() *kernel.Bounds {
	if e.exhaustiveRanked || e.m.Len() < kernel.BoundsMinN {
		return nil
	}
	v := e.m.View()
	if b := e.bounds.Load(); b != nil && b.MatchesView(v) {
		return b
	}
	e.boundsMu.Lock()
	defer e.boundsMu.Unlock()
	if b := e.bounds.Load(); b != nil && b.MatchesView(v) {
		return b
	}
	b := kernel.NewBounds(e.baseNT, v)
	e.bounds.Store(b)
	return b
}

// PruneStats reports the efficacy counters of the engine's ranked and
// membership kernel calls so far — cells skipped vs. expanded under
// weight-pushed pruning, plus the cross-append reuse counters
// (RankedReused, RankedReseeded, HandlesSkipped) of an enumerator
// carried by ExtendValidated. All zero before the first ranked call and
// in exhaustive mode.
func (e *Engine) PruneStats() kernel.PruneStats {
	s := e.bounds.Load().Stats()
	e.mu.Lock()
	re := e.rankedEnum
	if re == nil {
		re = e.rankedSeed
	}
	e.mu.Unlock()
	if re != nil {
		reused, reseeded, skipped := re.ExtendStats()
		s.RankedReused += reused
		s.RankedReseeded += reseeded
		s.HandlesSkipped += skipped
	}
	return s
}

// Plan returns the selected plan.
func (e *Engine) Plan() Plan { return e.plan }

// Explain returns the plan rendered for humans.
func (e *Engine) Explain() string { return e.plan.Explain() }

// Confidence computes the confidence of an answer. For indexed
// s-projector queries, index (1-based) selects the occurrence; it is
// ignored otherwise. For the FP^#P-complete class an error is returned;
// use EstimateConfidence.
func (e *Engine) Confidence(o []automata.Symbol, index int) (float64, error) {
	return e.ConfidenceCtx(context.Background(), o, index)
}

// ConfidenceCtx is Confidence with step-granularity cancellation: the
// sparse kernels poll the context every few sequence positions, so a
// deadline aborts an n=10⁵ DP promptly instead of after the full pass.
// The dense reference paths (WithDenseKernels) check the context only
// on entry.
func (e *Engine) ConfidenceCtx(ctx context.Context, o []automata.Symbol, index int) (float64, error) {
	// Fail fast on a context that is already dead: the kernels only poll
	// every few positions, so a short input could otherwise complete a
	// cancelled query.
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	switch e.plan.Class {
	case ClassIndexedSProjector:
		if index < 1 {
			return 0, fmt.Errorf("core: indexed query requires an occurrence index ≥ 1")
		}
		return e.p.IndexedConfidenceCtx(ctx, e.m, o, index)
	case ClassSProjector:
		return e.p.ConfidenceCtx(ctx, e.m, o)
	case ClassMealy, ClassDeterministic:
		if e.dt != nil {
			// Sparse frontier kernel over the tables built at prepare time.
			if e.hasUniform {
				return kernel.DetUniformConfidenceCtx(ctx, e.dt, e.m.View(), e.uniformK, o, nil)
			}
			return kernel.DetConfidenceCtx(ctx, e.dt, e.m.View(), o, nil)
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if e.hasUniform {
			return conf.DetUniformDense(e.t, e.m, o), nil
		}
		return conf.DetDense(e.t, e.m, o), nil
	case ClassUniform:
		if e.nt != nil {
			return kernel.UniformConfidenceCtx(ctx, e.nt, e.m.View(), e.uniformK, o, nil)
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if e.dense {
			return conf.UniformLazy(e.t, e.m, o), nil
		}
		// >MaxUniformStates: no subset-kernel tables; fall back to the
		// on-demand lazy DP, which does not materialize the powerset.
		return conf.Uniform(e.t, e.m, o), nil
	default:
		return 0, fmt.Errorf("core: exact confidence for %s is FP^#P-complete (Theorem 4.9); use EstimateConfidence", e.plan.Class)
	}
}

// EstimateConfidence is the Monte Carlo fallback for the hard class (it
// works for every transducer class; s-projector queries estimate through
// the equivalent transducer). The error is additive: ±ε with probability
// 1−δ given conf.SamplesFor(ε, δ) samples.
func (e *Engine) EstimateConfidence(o []automata.Symbol, samples int, rng *rand.Rand) float64 {
	return conf.Estimate(e.equivalent(), e.m, o, samples, rng)
}

// initTopCtx prepares the ranked iterator for the plan's ranking. Called
// with e.mu held. A context error during preparation (the indexed class
// builds its answer DAG here) leaves the engine unprepared — nothing is
// memoized, so a later call with a live context starts cleanly.
func (e *Engine) initTopCtx(ctx context.Context) error {
	switch e.plan.Class {
	case ClassIndexedSProjector:
		it, err := e.p.EnumerateIndexedCtx(ctx, e.m)
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			// Structural failure (degenerate DAG): an empty enumeration,
			// as before.
			e.topDone = true
			e.topNext = func(context.Context) (Answer, bool, error) { return Answer{}, false, nil }
			return nil
		}
		e.topNext = func(ctx context.Context) (Answer, bool, error) {
			a, ok, err := it.NextCtx(ctx)
			if err != nil || !ok {
				return Answer{}, false, err
			}
			return Answer{Output: a.Output, Index: a.Index, Score: a.Conf, Kind: "confidence"}, true, nil
		}
	case ClassSProjector:
		it := e.p.EnumerateImaxParallel(e.m, e.rankedWorkers)
		e.topNext = func(ctx context.Context) (Answer, bool, error) {
			a, ok, err := it.NextCtx(ctx)
			if err != nil || !ok {
				return Answer{}, false, err
			}
			return Answer{Output: a.Output, Score: a.Imax, Kind: "I_max"}, true, nil
		}
	default:
		var it *ranked.Enumerator
		if e.rankedSeed != nil {
			// Carried across an append by ExtendValidated: the previous
			// drain's resolved tree, re-priced against the grown sequence.
			it, e.rankedSeed = e.rankedSeed, nil
		} else if e.rankedExtendable {
			// Append-extendable serving: resolve unpruned and retain the
			// tree so the next ExtendValidated can carry it.
			it = ranked.NewEnumerator(e.pt, e.m,
				ranked.WithTables(e.baseNT), ranked.WithWorkers(e.rankedWorkers), ranked.WithExtendable())
		} else {
			opts := []ranked.Option{ranked.WithTables(e.baseNT), ranked.WithWorkers(e.rankedWorkers)}
			if b := e.ensureBounds(); b != nil {
				opts = append(opts, ranked.WithBounds(b))
			} else {
				opts = append(opts, ranked.WithExhaustive())
			}
			if e.eagerCheckpoints {
				opts = append(opts, ranked.WithEagerCheckpoints())
			}
			it = ranked.NewEnumerator(e.pt, e.m, opts...)
		}
		e.rankedEnum = it
		e.topNext = func(ctx context.Context) (Answer, bool, error) {
			a, ok, err := it.NextCtx(ctx)
			if err != nil || !ok {
				return Answer{}, false, err
			}
			return Answer{Output: a.Output, Score: math.Exp(a.LogEmax), Kind: "E_max"}, true, nil
		}
	}
	return nil
}

// TopK returns the k best-ranked answers under the plan's ranking.
// Answers already enumerated by earlier calls are served from the memo;
// only the tail beyond the longest previous prefix costs enumeration
// work. Safe for concurrent use.
func (e *Engine) TopK(k int) []Answer {
	out, _ := e.TopKCtx(context.Background(), k)
	return out
}

// TopKCtx is TopK with cancellation. On a context error it returns the
// already-proven ranked prefix (up to k answers, possibly empty)
// together with ctx.Err(): the prefix is exactly the first answers of
// the uncancelled enumeration — never a reordering — and the underlying
// iterator is left resumable, so a later call with a live context
// extends the same sequence.
func (e *Engine) TopKCtx(ctx context.Context, k int) ([]Answer, error) {
	if k <= 0 {
		return nil, ctx.Err()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// A context that is already dead behaves like a cancellation after
	// zero additional work: the memoized prefix is returned with the
	// error, even when the cache could satisfy k on its own.
	iterErr := ctx.Err()
	if iterErr == nil && e.topNext == nil {
		if err := e.initTopCtx(ctx); err != nil {
			return nil, err
		}
	}
	for iterErr == nil && len(e.topCache) < k && !e.topDone {
		a, ok, err := e.topNext(ctx)
		if err != nil {
			iterErr = err
			break
		}
		if !ok {
			e.topDone = true
			break
		}
		e.topCache = append(e.topCache, a)
	}
	n := min(k, len(e.topCache))
	if n == 0 {
		return nil, iterErr
	}
	out := make([]Answer, n)
	copy(out, e.topCache[:n])
	return out, iterErr
}

// Enumerate returns up to limit answers in unranked order (Theorem 4.1);
// limit ≤ 0 means all. Works for every class. Like TopK, the enumerated
// prefix is memoized across calls, and the method is safe for concurrent
// use.
func (e *Engine) Enumerate(limit int) [][]automata.Symbol {
	out, _ := e.EnumerateCtx(context.Background(), limit)
	return out
}

// EnumerateCtx is Enumerate with cancellation, polled inside every
// nonemptiness probe of the prefix-tree traversal. On a context error it
// returns the answers enumerated so far with ctx.Err(); the traversal
// stays resumable, so a later call with a live context continues the
// same depth-first order without skipping or repeating answers.
func (e *Engine) EnumerateCtx(ctx context.Context, limit int) ([][]automata.Symbol, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// As in TopKCtx: a dead context short-circuits to the memoized
	// prefix plus the context error, regardless of cache state.
	iterErr := ctx.Err()
	if iterErr == nil && e.enumIter == nil && !e.enumDone {
		if e.baseNT != nil {
			e.enumIter = enum.NewEnumeratorWithTables(e.pt, e.m, e.baseNT)
		} else {
			e.enumIter = enum.NewEnumerator(e.equivalent(), e.m)
		}
	}
	for iterErr == nil && (limit <= 0 || len(e.enumCache) < limit) && !e.enumDone {
		o, ok, err := e.enumIter.NextCtx(ctx)
		if err != nil {
			iterErr = err
			break
		}
		if !ok {
			e.enumDone = true
			break
		}
		e.enumCache = append(e.enumCache, o)
	}
	n := len(e.enumCache)
	if limit > 0 && limit < n {
		n = limit
	}
	if n == 0 {
		return nil, iterErr
	}
	out := make([][]automata.Symbol, n)
	copy(out, e.enumCache[:n])
	return out, iterErr
}

// IsAnswer reports whether o is an answer (nonzero confidence). The
// reachability probe runs over the base tables built at prepare time;
// the tables are read-only, so concurrent calls are safe.
func (e *Engine) IsAnswer(o []automata.Symbol) bool {
	if e.baseNT != nil {
		c := transducer.Constraint{Prefix: o, Mode: transducer.ExactOnly}
		found, _ := kernel.ConstrainedNonEmptyBoundedCtx(context.Background(), e.baseNT, e.m.View(), c, e.ensureBounds(), nil)
		return found
	}
	return enum.IsAnswer(e.equivalent(), e.m, o)
}

// ScoredAnswer is a ranked answer annotated with its exact confidence
// (the paper's Section 2.3.1: "an efficient procedure for computing the
// confidence of an answer is still required if the user desires the
// confidence to be given along with each answer").
type ScoredAnswer struct {
	Answer
	// Conf is the exact confidence, when the class admits tractable
	// confidence computation; NaN for the FP^#P-complete class.
	Conf float64
}

// TopKWithConfidence returns the k best-ranked answers annotated with
// exact confidences where Table 2 makes that tractable. For indexed
// s-projectors the ranking score already is the confidence.
func (e *Engine) TopKWithConfidence(k int) []ScoredAnswer {
	out, _ := e.TopKWithConfidenceCtx(context.Background(), k)
	return out
}

// TopKWithConfidenceCtx is TopKWithConfidence with cancellation of both
// the ranked enumeration and the per-answer confidence DPs. On a context
// error it returns the fully-annotated prefix built so far with
// ctx.Err().
func (e *Engine) TopKWithConfidenceCtx(ctx context.Context, k int) ([]ScoredAnswer, error) {
	top, topErr := e.TopKCtx(ctx, k)
	var out []ScoredAnswer
	for _, a := range top {
		sa := ScoredAnswer{Answer: a, Conf: math.NaN()}
		switch e.plan.Class {
		case ClassIndexedSProjector:
			sa.Conf = a.Score
		case ClassGeneral:
			// FP^#P-complete: leave NaN.
		default:
			c, err := e.ConfidenceCtx(ctx, a.Output, a.Index)
			if err != nil && ctx.Err() != nil {
				return out, err
			}
			if err == nil {
				sa.Conf = c
			}
		}
		out = append(out, sa)
	}
	return out, topErr
}
