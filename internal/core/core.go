// Package core is the query-evaluation engine: it classifies a query
// against the tractability map of Kimelfeld & Ré (PODS 2010), Table 2,
// selects the algorithms accordingly, and exposes the choice as an
// explainable plan. It is the layer a database system (package lahar, the
// msq facade, the CLI) builds on.
//
// Classification drives three decisions:
//
//   - confidence: Theorem 4.6's DP (deterministic), its k-uniform fast
//     path, Theorem 4.8's subset DP (uniform nondeterministic),
//     Theorem 5.5 (s-projector), Theorem 5.8 (indexed s-projector), or —
//     for the FP^#P-complete remainder — refusal with an optional Monte
//     Carlo estimate;
//   - ranking: exact decreasing confidence (Theorem 5.7, indexed
//     s-projectors), I_max with ratio n (Theorem 5.2, s-projectors), or
//     E_max with ratio |Σ|ⁿ (Theorem 4.3, everything else);
//   - enumeration: the unranked polynomial-delay traversal (Theorem 4.1)
//     is always available.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"markovseq/internal/automata"
	"markovseq/internal/conf"
	"markovseq/internal/enum"
	"markovseq/internal/markov"
	"markovseq/internal/ranked"
	"markovseq/internal/sproj"
	"markovseq/internal/transducer"
)

// Class is the query class per the columns of Table 2.
type Class int

const (
	// ClassMealy: deterministic, non-selective, 1-uniform.
	ClassMealy Class = iota
	// ClassDeterministic: the underlying automaton is deterministic.
	ClassDeterministic
	// ClassUniform: nondeterministic with k-uniform emission.
	ClassUniform
	// ClassGeneral: nondeterministic, non-uniform (the FP^#P-complete
	// confidence class).
	ClassGeneral
	// ClassSProjector: a substring projector [B]A[E].
	ClassSProjector
	// ClassIndexedSProjector: an indexed substring projector [B]↓A[E].
	ClassIndexedSProjector
)

func (c Class) String() string {
	switch c {
	case ClassMealy:
		return "Mealy machine"
	case ClassDeterministic:
		return "deterministic transducer"
	case ClassUniform:
		return "uniform-emission nondeterministic transducer"
	case ClassGeneral:
		return "general (nondeterministic, non-uniform) transducer"
	case ClassSProjector:
		return "s-projector"
	case ClassIndexedSProjector:
		return "indexed s-projector"
	default:
		return "unknown"
	}
}

// Plan records the algorithm selection for a query.
type Plan struct {
	// Class is the query's Table 2 column.
	Class Class
	// Confidence names the confidence algorithm ("" when the class is
	// FP^#P-complete and only estimation applies).
	Confidence string
	// Ranking names the ranked-enumeration algorithm.
	Ranking string
	// Ratio describes the worst-case approximation ratio of the ranked
	// order w.r.t. true confidence.
	Ratio string
	// Hard is set when exact confidence computation is FP^#P-complete.
	Hard bool
}

// Explain renders the plan as the kind of EXPLAIN output a database user
// expects.
func (p Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class:      %s\n", p.Class)
	if p.Hard {
		fmt.Fprintf(&b, "confidence: FP^#P-complete (Theorem 4.9); Monte Carlo additive estimation available\n")
	} else {
		fmt.Fprintf(&b, "confidence: %s\n", p.Confidence)
	}
	fmt.Fprintf(&b, "ranking:    %s\n", p.Ranking)
	fmt.Fprintf(&b, "ratio:      %s\n", p.Ratio)
	return b.String()
}

// Answer is one evaluated answer.
type Answer struct {
	Output []automata.Symbol
	// Index is the occurrence index for indexed s-projector answers.
	Index int
	// Score is the ranking score (confidence, I_max, or E_max — see Kind).
	Score float64
	Kind  string
}

// Engine evaluates one query over one Markov sequence.
type Engine struct {
	m       *markov.Sequence
	t       *transducer.Transducer // nil for s-projector queries
	p       *sproj.SProjector      // nil for transducer queries
	indexed bool
	plan    Plan
}

// NewTransducerEngine classifies and wraps a transducer query.
func NewTransducerEngine(t *transducer.Transducer, m *markov.Sequence) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if t.In.Size() != m.Nodes.Size() {
		return nil, fmt.Errorf("core: transducer reads %d symbols, sequence has %d nodes",
			t.In.Size(), m.Nodes.Size())
	}
	e := &Engine{m: m, t: t}
	k, uniform := t.UniformK()
	switch {
	case t.IsMealy():
		e.plan = Plan{
			Class:      ClassMealy,
			Confidence: fmt.Sprintf("Theorem 4.6 k-uniform DP (k=%d)", k),
		}
	case t.IsDeterministic():
		algo := "Theorem 4.6 DP, O(|o|·n·|Σ|²·|Q|²)"
		if uniform {
			algo = fmt.Sprintf("Theorem 4.6 k-uniform DP (k=%d)", k)
		}
		e.plan = Plan{Class: ClassDeterministic, Confidence: algo}
	case uniform:
		e.plan = Plan{
			Class:      ClassUniform,
			Confidence: fmt.Sprintf("Theorem 4.8 subset DP (k=%d), O(n·k·|Σ|²·4^|Q|)", k),
		}
	default:
		e.plan = Plan{Class: ClassGeneral, Hard: true}
	}
	e.plan.Ranking = "E_max Lawler–Murty enumeration (Theorem 4.3), polynomial delay"
	e.plan.Ratio = "|Σ|^n-approximately decreasing confidence (worst-case optimal up to 2^{n^{1-δ}}, Theorem 4.4)"
	return e, nil
}

// NewSProjectorEngine classifies and wraps an s-projector query; indexed
// selects the [B]↓A[E] semantics.
func NewSProjectorEngine(p *sproj.SProjector, m *markov.Sequence, indexed bool) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if p.Alphabet().Size() != m.Nodes.Size() {
		return nil, fmt.Errorf("core: s-projector reads %d symbols, sequence has %d nodes",
			p.Alphabet().Size(), m.Nodes.Size())
	}
	e := &Engine{m: m, p: p, indexed: indexed}
	if indexed {
		e.plan = Plan{
			Class:      ClassIndexedSProjector,
			Confidence: "Theorem 5.8 DP, O(n·|Σ|²·|Q|²)",
			Ranking:    "exact decreasing confidence via DAG path enumeration (Theorem 5.7)",
			Ratio:      "exact order",
		}
	} else {
		e.plan = Plan{
			Class:      ClassSProjector,
			Confidence: "Theorem 5.5 DP, O(n·|o|²·|Σ|²·|Q_B|²·4^{|Q_E|})",
			Ranking:    "I_max Lawler enumeration (Lemma 5.10)",
			Ratio:      "n-approximately decreasing confidence (Proposition 5.9 / Theorem 5.2)",
		}
	}
	return e, nil
}

// Plan returns the selected plan.
func (e *Engine) Plan() Plan { return e.plan }

// Explain returns the plan rendered for humans.
func (e *Engine) Explain() string { return e.plan.Explain() }

// Confidence computes the confidence of an answer. For indexed
// s-projector queries, index (1-based) selects the occurrence; it is
// ignored otherwise. For the FP^#P-complete class an error is returned;
// use EstimateConfidence.
func (e *Engine) Confidence(o []automata.Symbol, index int) (float64, error) {
	switch e.plan.Class {
	case ClassIndexedSProjector:
		if index < 1 {
			return 0, fmt.Errorf("core: indexed query requires an occurrence index ≥ 1")
		}
		return e.p.IndexedConfidence(e.m, o, index), nil
	case ClassSProjector:
		return e.p.Confidence(e.m, o), nil
	case ClassMealy, ClassDeterministic:
		if _, ok := e.t.UniformK(); ok {
			return conf.DetUniform(e.t, e.m, o), nil
		}
		return conf.Det(e.t, e.m, o), nil
	case ClassUniform:
		return conf.Uniform(e.t, e.m, o), nil
	default:
		return 0, fmt.Errorf("core: exact confidence for %s is FP^#P-complete (Theorem 4.9); use EstimateConfidence", e.plan.Class)
	}
}

// EstimateConfidence is the Monte Carlo fallback for the hard class (it
// works for every transducer class; s-projector queries estimate through
// the equivalent transducer). The error is additive: ±ε with probability
// 1−δ given conf.SamplesFor(ε, δ) samples.
func (e *Engine) EstimateConfidence(o []automata.Symbol, samples int, rng *rand.Rand) float64 {
	t := e.t
	if t == nil {
		t = e.p.ToTransducer()
	}
	return conf.Estimate(t, e.m, o, samples, rng)
}

// TopK returns the k best-ranked answers under the plan's ranking.
func (e *Engine) TopK(k int) []Answer {
	var out []Answer
	switch e.plan.Class {
	case ClassIndexedSProjector:
		it, err := e.p.EnumerateIndexed(e.m)
		if err != nil {
			return nil
		}
		for len(out) < k {
			a, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, Answer{Output: a.Output, Index: a.Index, Score: a.Conf, Kind: "confidence"})
		}
	case ClassSProjector:
		it := e.p.EnumerateImax(e.m)
		for len(out) < k {
			a, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, Answer{Output: a.Output, Score: a.Imax, Kind: "I_max"})
		}
	default:
		it := ranked.NewEnumerator(e.t, e.m)
		for len(out) < k {
			a, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, Answer{Output: a.Output, Score: math.Exp(a.LogEmax), Kind: "E_max"})
		}
	}
	return out
}

// Enumerate returns up to limit answers in unranked order (Theorem 4.1);
// limit ≤ 0 means all. Works for every class.
func (e *Engine) Enumerate(limit int) [][]automata.Symbol {
	t := e.t
	if t == nil {
		t = e.p.ToTransducer()
	}
	it := enum.NewEnumerator(t, e.m)
	var out [][]automata.Symbol
	for limit <= 0 || len(out) < limit {
		o, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, o)
	}
	return out
}

// IsAnswer reports whether o is an answer (nonzero confidence).
func (e *Engine) IsAnswer(o []automata.Symbol) bool {
	t := e.t
	if t == nil {
		t = e.p.ToTransducer()
	}
	return enum.IsAnswer(t, e.m, o)
}

// ScoredAnswer is a ranked answer annotated with its exact confidence
// (the paper's Section 2.3.1: "an efficient procedure for computing the
// confidence of an answer is still required if the user desires the
// confidence to be given along with each answer").
type ScoredAnswer struct {
	Answer
	// Conf is the exact confidence, when the class admits tractable
	// confidence computation; NaN for the FP^#P-complete class.
	Conf float64
}

// TopKWithConfidence returns the k best-ranked answers annotated with
// exact confidences where Table 2 makes that tractable. For indexed
// s-projectors the ranking score already is the confidence.
func (e *Engine) TopKWithConfidence(k int) []ScoredAnswer {
	var out []ScoredAnswer
	for _, a := range e.TopK(k) {
		sa := ScoredAnswer{Answer: a, Conf: math.NaN()}
		switch e.plan.Class {
		case ClassIndexedSProjector:
			sa.Conf = a.Score
		case ClassGeneral:
			// FP^#P-complete: leave NaN.
		default:
			if c, err := e.Confidence(a.Output, a.Index); err == nil {
				sa.Conf = c
			}
		}
		out = append(out, sa)
	}
	return out
}
