package core

import (
	"context"
	"math"

	"markovseq/internal/kernel"
	"markovseq/internal/markov"
	"markovseq/internal/ranked"
)

// Sliding-window sweep evaluation. The serving layer's SlidingTopK used
// to rebind a fresh engine per window and redo the full window DP per
// slide; a WindowRun instead walks the stream once:
//
//   - window extraction is zero-copy (markov.Windower.SharedWindow: the
//     parent's transition matrices and compiled CSR steps are shared, so
//     a window costs O(|Σ|) instead of O(w·|Σ|²));
//   - a kernel.WindowEvaluator maintains the composed MaxLog step
//     operator of the current window with two-stack sliding-window
//     aggregation (amortized O(1) operator combines per stride advance)
//     and yields each window's frontier, whose accepting reachability
//     gates the per-window top-k: a window with no structurally
//     reachable accepting cell provably has no answers at any k, so it
//     is skipped without binding anything — an exact (float-independent)
//     optimization. The gate is adaptive: composing operators costs
//     more per window than the savings on workloads where every window
//     has answers, so after gateProbeWindows consecutive non-empty
//     windows the gate drops out for the rest of the sweep (results are
//     exact either way — the gate only ever skips provably-empty work);
//   - for transducer plans, per-window top-k runs on a ranked.Sweeper —
//     the lean sequential form of the ranked enumerator — instead of a
//     full Engine with its mutex, memo, and checkpoint LRU. The emitted
//     answers are bit-identical to the engine path. Other plan classes
//     fall back to a per-window engine over the shared window.
type WindowRun struct {
	pr             *Prepared
	wr             *markov.Windower
	gate           *kernel.WindowEvaluator // nil for non-transducer plans or a dropped gate
	gateHits       int                     // empty windows the gate found so far
	n              int
	window, stride int
	count          int
	idx            int // next window index
	start          int // next window start position, 1-based
}

// gateProbeWindows is the adaptive-gate probe length: the emptiness gate
// runs for this many windows, and if none of them was empty it is
// dropped for the remainder of the sweep. On dense workloads (every
// window has answers) the gate's operator composes are pure overhead;
// on sparse ones (a selective transducer over a long stream) each empty
// window it catches saves a full ranked enumeration. A handful of
// windows is enough to tell the regimes apart.
const gateProbeWindows = 8

// Window is one window of a sweep. Empty means the gate proved the
// window has no answers for any k (no accepting cell of the base
// transducer is reachable); Seq is nil in that case.
type Window struct {
	Index      int
	Start, End int // 1-based inclusive stream positions
	Empty      bool
	// Seq is the window's marginal sequence as a zero-copy overlay of
	// the stream (read-only; see markov.Windower.SharedWindow).
	Seq *markov.Sequence
}

// Windows starts a sliding sweep of m with the given window and stride
// (both ≥ 1; window > m.Len() yields an empty run). The run is a
// sequential cursor — call Next from one goroutine; per-window top-k
// (NewEval) may then be fanned out.
func (pr *Prepared) Windows(m *markov.Sequence, window, stride int) *WindowRun {
	if window < 1 || stride < 1 {
		panic("core: Windows window and stride must be >= 1")
	}
	r := &WindowRun{
		pr:     pr,
		wr:     m.Windower(),
		n:      m.Len(),
		window: window,
		stride: stride,
		start:  1,
	}
	if r.n >= window {
		r.count = (r.n-window)/stride + 1
	}
	// The gate runs the base transducer's MaxLog operator product over
	// the raw stream view. It is exact for transducer plans: the ranked
	// enumeration's answers are exactly the outputs of accepting runs
	// over positive-probability worlds, so "no accepting cell reachable"
	// ⟺ "top-k empty for every k". S-projector plans rank by different
	// scores (confidence / I_max) whose emptiness we do not gate here.
	if pr.t != nil && r.count > 0 {
		r.gate = kernel.NewWindowEvaluator(pr.baseNT, m.View(), r.wr, window, stride, kernel.MaxLog)
	}
	return r
}

// Len returns the total number of windows of the sweep.
func (r *WindowRun) Len() int { return r.count }

// Next yields the next window, or ok=false when the sweep is done.
func (r *WindowRun) Next() (Window, bool) {
	if r.idx >= r.count {
		return Window{}, false
	}
	w := Window{Index: r.idx, Start: r.start, End: r.start + r.window - 1}
	if r.gate != nil {
		wf, ok := r.gate.Next()
		if !ok || wf.Start != w.Start {
			panic("core: window gate out of sync with sweep cursor")
		}
		w.Empty = !wf.NonEmpty
		if w.Empty {
			r.gateHits++
		} else if r.idx+1 >= gateProbeWindows && r.gateHits == 0 {
			r.gate = nil // dense sweep: gating costs more than it saves
		}
	}
	if !w.Empty {
		w.Seq = r.wr.SharedWindow(w.Start, w.End)
	}
	r.idx++
	r.start += r.stride
	return w, true
}

// WindowEval holds the per-goroutine evaluation state of a sweep: a
// ranked.Sweeper for transducer plans (engine-free fast path), or
// nothing for the engine-backed fallback. One WindowEval serves any
// number of windows sequentially; parallel window fan-out uses one per
// worker.
type WindowEval struct {
	pr *Prepared
	sw *ranked.Sweeper
}

// NewEval returns fresh evaluation state for this run's plan.
func (r *WindowRun) NewEval() *WindowEval {
	ev := &WindowEval{pr: r.pr}
	if r.pr.t != nil {
		ev.sw = ranked.NewSweeper(r.pr.pt, r.pr.sweeperOpts()...)
	}
	return ev
}

// TopK evaluates one window's top-k under the plan's ranking, in ranked
// order. Empty windows return nil without work. The answers are
// bit-identical to BindValidated(w.Seq).TopKCtx(ctx, k). On a context
// error the window is incomplete and no partial answers are returned.
func (ev *WindowEval) TopK(ctx context.Context, w Window, k int) ([]Answer, error) {
	if w.Empty {
		return nil, ctx.Err()
	}
	if ev.sw != nil {
		top, err := ev.sw.TopK(ctx, w.Seq, k)
		if err != nil {
			return nil, err
		}
		out := make([]Answer, len(top))
		for i, a := range top {
			out[i] = Answer{Output: a.Output, Score: math.Exp(a.LogEmax), Kind: "E_max"}
		}
		return out, nil
	}
	eng, err := ev.pr.BindValidated(w.Seq)
	if err != nil {
		return nil, err
	}
	top, err := eng.TopKCtx(ctx, k)
	if err != nil {
		return nil, err
	}
	return top, nil
}
