package core

import (
	"fmt"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
	"markovseq/internal/rfid"
	"markovseq/internal/testutil"
	"markovseq/internal/transducer"
)

// growEngineSeq appends full.TransAt(from..from+cnt-1) to grown, one
// event at a time (the AppendEvents idiom).
func growEngineSeq(t *testing.T, grown, full *markov.Sequence, from, cnt int) *markov.Sequence {
	t.Helper()
	for i := from; i < from+cnt; i++ {
		var err error
		grown, err = grown.Extended([][][]float64{full.TransAt(i)})
		if err != nil {
			t.Fatalf("extend at %d: %v", i, err)
		}
	}
	return grown
}

// engineTopKThroughTies drains the k best answers of e and extends the
// drain through the last tied score class, so a k-boundary that splits
// a tie class can be compared as a set (see assertEngineTopKMatches).
func engineTopKThroughTies(t *testing.T, e *Engine, k int) []Answer {
	t.Helper()
	out := e.TopK(k)
	if len(out) < k {
		return out
	}
	classScore := out[k-1].Score
	for kk := k + 1; ; kk++ {
		next := e.TopK(kk)
		if len(next) < kk {
			return next
		}
		if next[kk-1].Score != classScore {
			return next[:kk-1]
		}
	}
}

// assertEngineTopKMatches requires got (a k-drain) to agree with want
// (a drain extended through its final tie class) rank by rank on
// bit-identical scores and set-identically within every maximal run of
// equal scores; where scores strictly decrease this forces identical
// answers at every rank. Order inside an exact-tie class is
// construction-dependent (see ranked.ExtendEnumerator).
func assertEngineTopKMatches(t *testing.T, label string, got, want []Answer, k int) {
	t.Helper()
	n := min(k, len(want))
	if len(got) != n {
		t.Fatalf("%s: got %d answers, want %d (k=%d)", label, len(got), n, k)
	}
	for i := range got {
		if got[i].Score != want[i].Score {
			t.Fatalf("%s rank %d: score %v, want %v (must be bit-identical)", label, i, got[i].Score, want[i].Score)
		}
	}
	key := func(a Answer) string { return fmt.Sprintf("%v|%d|%s", a.Output, a.Index, a.Kind) }
	wantBy := map[float64]map[string]bool{}
	for _, a := range want {
		m := wantBy[a.Score]
		if m == nil {
			m = map[string]bool{}
			wantBy[a.Score] = m
		}
		m[key(a)] = true
	}
	gotClass := map[float64]int{}
	for i, a := range got {
		if !wantBy[a.Score][key(a)] {
			t.Fatalf("%s rank %d: answer %v (score %v) not among the reference answers of that score", label, i, a.Output, a.Score)
		}
		gotClass[a.Score]++
	}
	if len(got) == 0 {
		return
	}
	last := got[len(got)-1].Score
	for s, c := range gotClass {
		if s != last && c != len(wantBy[s]) {
			t.Fatalf("%s: tie class at score %v has %d answers, reference has %d", label, s, c, len(wantBy[s]))
		}
	}
}

// extendWorkloads builds the differential workloads: the RFID serving
// query and a random nondeterministic transducer over a random sequence
// (nondeterminism produces exact score ties, exercising the tie-class
// contract).
func extendWorkloads(t *testing.T, n int) (out []struct {
	name string
	q    *transducer.Transducer
	full *markov.Sequence
}) {
	t.Helper()
	f := rfid.Hospital(3, 2)
	h := rfid.BuildHMM(f, rfid.DefaultNoise)
	trc, err := rfid.Simulate(h, n, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, struct {
		name string
		q    *transducer.Transducer
		full *markov.Sequence
	}{"rfid", rfid.PlaceTransducer(f, "lab"), trc.Seq})

	rng := rand.New(rand.NewSource(29))
	in := automata.MustAlphabet("a", "b", "c")
	outs := automata.MustAlphabet("x", "y")
	tr := transducer.New(in, outs, 3, 0)
	for st := 0; st < 3; st++ {
		tr.SetAccepting(st, true)
		for _, s := range in.Symbols() {
			var e []automata.Symbol
			if rng.Intn(2) == 0 {
				e = []automata.Symbol{automata.Symbol(rng.Intn(outs.Size()))}
			}
			tr.AddTransition(st, s, rng.Intn(3), e)
		}
	}
	out = append(out, struct {
		name string
		q    *transducer.Transducer
		full *markov.Sequence
	}{"random", tr, markov.Random(in, n, 0.7, rng)})
	return out
}

// TestExtendValidatedDifferential: engines chained with ExtendValidated
// across appends answer TopK identically (bit-identical scores,
// set-identical tie classes) to engines prepared with
// WithFromScratchRanked and bound fresh at every length.
func TestExtendValidatedDifferential(t *testing.T) {
	testutil.CheckLeaks(t)
	const n = 30
	for _, wl := range extendWorkloads(t, n) {
		for _, k := range []int{1, 10} {
			prep := PrepareTransducer(wl.q, WithRankedWorkers(2))
			ref := PrepareTransducer(wl.q, WithFromScratchRanked(), WithRankedWorkers(2))
			p := n - 8
			grown := wl.full.Window(1, p)
			eng, err := prep.ExtendValidated(nil, grown)
			if err != nil {
				t.Fatal(err)
			}
			eng.TopK(k)
			for p < n {
				step := 2
				if p+step > n {
					step = n - p
				}
				grown = growEngineSeq(t, grown, wl.full, p, step)
				p += step
				eng, err = prep.ExtendValidated(eng, grown)
				if err != nil {
					t.Fatal(err)
				}
				got := eng.TopK(k)
				refEng, err := ref.ExtendValidated(nil, grown)
				if err != nil {
					t.Fatal(err)
				}
				want := engineTopKThroughTies(t, refEng, k)
				assertEngineTopKMatches(t, fmt.Sprintf("%s k=%d p=%d", wl.name, k, p), got, want, k)
			}
			if s := eng.PruneStats(); s.RankedReused == 0 {
				t.Fatalf("%s k=%d: no ranked answers carried across appends: %+v", wl.name, k, s)
			}
		}
	}
}

// TestExtendValidatedSkipsDormantHandles: chaining appends while the
// drain stays shallow carries some prefix-checkpoint handles that never
// materialized a DP layer — every child aligned to them stayed
// bound-dominated — and the carry keeps the deferral instead of
// rebuilding, counted by PruneStats.HandlesSkipped.
func TestExtendValidatedSkipsDormantHandles(t *testing.T) {
	const n = 40
	wl := extendWorkloads(t, n)[0]
	prep := PrepareTransducer(wl.q)
	p := n - 10
	grown := wl.full.Window(1, p)
	eng, err := prep.ExtendValidated(nil, grown)
	if err != nil {
		t.Fatal(err)
	}
	eng.TopK(6)
	for p < n {
		grown = growEngineSeq(t, grown, wl.full, p, 2)
		p += 2
		eng, err = prep.ExtendValidated(eng, grown)
		if err != nil {
			t.Fatal(err)
		}
		eng.TopK(6)
	}
	s := eng.PruneStats()
	if s.HandlesSkipped == 0 {
		t.Fatalf("no dormant checkpoint handles carried without materialization: %+v", s)
	}
	// The carried engine still answers exactly like a fresh one.
	ref, err := PrepareTransducer(wl.q, WithFromScratchRanked()).Bind(grown)
	if err != nil {
		t.Fatal(err)
	}
	assertEngineTopKMatches(t, "dormant-handle carry", eng.TopK(6), engineTopKThroughTies(t, ref, 6), 6)
}

// TestEnsureBoundsRejectsStaleSweep is the staleness audit of the
// weight-pushed potentials: Bounds rows look forward to the end of the
// sequence, so a sweep computed over a shorter epoch must never be used
// as a pruning threshold after an append. ensureBounds re-checks the
// stored sweep against the engine's view and rebuilds on mismatch.
func TestEnsureBoundsRejectsStaleSweep(t *testing.T) {
	const n = 44
	wl := extendWorkloads(t, n)[0]
	prep := PrepareTransducer(wl.q)
	short, err := prep.Bind(wl.full.Window(1, n-4))
	if err != nil {
		t.Fatal(err)
	}
	stale := short.ensureBounds()
	if stale == nil {
		t.Fatal("no bounds built for the short binding")
	}
	full, err := prep.Bind(wl.full)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a carried-over sweep from the pre-append epoch.
	full.bounds.Store(stale)
	b := full.ensureBounds()
	if b == stale {
		t.Fatal("ensureBounds served a sweep from a shorter epoch as a pruning threshold")
	}
	if b == nil || !b.MatchesView(full.m.View()) {
		t.Fatalf("rebuilt bounds do not match the engine's view")
	}
	// And the rebuilt sweep is stable on repeat.
	if again := full.ensureBounds(); again != b {
		t.Fatal("matching bounds were rebuilt a second time")
	}
}
