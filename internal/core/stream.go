package core

import (
	"markovseq/internal/kernel"
	"markovseq/internal/markov"
	"markovseq/internal/ranked"
)

// Append-only sliding evaluation. A WindowRun sweeps a frozen stream
// once; a StreamRun is its open-ended sibling for streams that grow: the
// cursor yields every complete window of the current sequence, returns
// ok=false when it has caught up with the frontier, and resumes — with
// all DP state resident — after each Extend. The resident state is
//
//   - the markov.Windower's forward marginals, grown by O(|Σ|²) per
//     appended event instead of recomputed (markov.Windower.Extend);
//   - the two-stack SWAG emptiness gate for transducer plans, whose
//     queued window operators survive the append untouched
//     (kernel.WindowEvaluator.Extend), so each appended event costs
//     amortized O(1) operator combines regardless of stream length.
//
// Unlike WindowRun, the gate is never adaptively dropped: on a live
// stream it is the resident window-frontier state itself, and its
// per-event cost is the amortized O(1) that makes appends cheap.
// Yielded windows are bit-identical to a from-scratch WindowRun over the
// extended sequence (shared CSR steps and identical marginal arithmetic
// preserve value bits).
//
// A StreamRun is a sequential cursor owned by one goroutine at a time;
// Extend and Next must be serialized by the caller.
type StreamRun struct {
	pr             *Prepared
	wr             *markov.Windower
	gate           *kernel.WindowEvaluator // transducer plans only
	n              int
	window, stride int
	idx            int // next window index
	start          int // next window start position, 1-based
}

// StreamWindows starts an append-aware sliding sweep of m with the given
// window and stride (both ≥ 1). The sequence may be shorter than the
// window; windows are yielded as Extend grows it past the threshold.
func (pr *Prepared) StreamWindows(m *markov.Sequence, window, stride int) *StreamRun {
	if window < 1 || stride < 1 {
		panic("core: StreamWindows window and stride must be >= 1")
	}
	r := &StreamRun{
		pr:     pr,
		wr:     m.Windower(),
		n:      m.Len(),
		window: window,
		stride: stride,
		start:  1,
	}
	if pr.t != nil {
		r.gate = kernel.NewWindowEvaluator(pr.baseNT, m.View(), r.wr, window, stride, kernel.MaxLog)
	}
	return r
}

// Extend grows the sweep over m2, an extension of the current sequence
// (markov.Sequence.Extended). Only the appended positions' marginals and
// step operators are computed; every already-yielded window and all
// queued SWAG state carry over.
func (r *StreamRun) Extend(m2 *markov.Sequence) {
	r.wr.Extend(m2)
	r.n = m2.Len()
	if r.gate != nil {
		r.gate.Extend(m2.View(), r.wr)
	}
}

// Next yields the next complete window, or ok=false once the cursor has
// caught up with the stream frontier (call again after Extend).
//
// Marginal rows older than the next window's start are reclaimed after
// each yield (markov.Windower.EvictBefore): no future window, gate step,
// or Extend can read them, so a caught-up watcher holds O(window)
// resident marginal state no matter how long the stream has run.
func (r *StreamRun) Next() (Window, bool) {
	if r.start+r.window-1 > r.n {
		return Window{}, false
	}
	w := Window{Index: r.idx, Start: r.start, End: r.start + r.window - 1}
	if r.gate != nil {
		wf, ok := r.gate.Next()
		if !ok || wf.Start != w.Start {
			panic("core: stream gate out of sync with sweep cursor")
		}
		w.Empty = !wf.NonEmpty
	}
	if !w.Empty {
		w.Seq = r.wr.SharedWindow(w.Start, w.End)
	}
	r.idx++
	r.start += r.stride
	// The next window (1-based start) seeds from marginal row start-1;
	// older rows can never be read again. EvictBefore clamps to keep the
	// final row, which Extend seeds the appended marginals from.
	r.wr.EvictBefore(r.start - 1)
	return w, true
}

// ResidentMarginals reports the number of marginal rows the run's
// windower currently holds — bounded on a caught-up stream (see Next),
// exposed so serving layers and tests can assert flat memory.
func (r *StreamRun) ResidentMarginals() int { return r.wr.Resident() }

// NewEval returns fresh per-goroutine evaluation state for this run's
// plan, exactly as WindowRun.NewEval.
func (r *StreamRun) NewEval() *WindowEval {
	ev := &WindowEval{pr: r.pr}
	if r.pr.t != nil {
		ev.sw = ranked.NewSweeper(r.pr.pt, r.pr.sweeperOpts()...)
	}
	return ev
}
