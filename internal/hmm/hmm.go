// Package hmm implements hidden Markov models and the translation that
// Kimelfeld & Ré (PODS 2010) assume as a preprocessing step (footnote 1 /
// the extended version [31]): an HMM together with a sequence of
// observations is translated into a Markov sequence — the conditional
// distribution of the hidden-state chain given the observations, which is
// a time-inhomogeneous first-order Markov chain.
//
// The package provides the standard inference routines (scaled
// forward–backward, Viterbi, posterior marginals) plus Condition, the
// translation into markov.Sequence that the rest of the repository
// queries.
package hmm

import (
	"fmt"
	"math"
	"math/rand"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
)

// Model is a time-homogeneous hidden Markov model.
type Model struct {
	// States is the hidden-state alphabet.
	States *automata.Alphabet
	// Obs is the observation alphabet.
	Obs *automata.Alphabet
	// Initial[s] = Pr(H₁ = s).
	Initial []float64
	// Trans[s][t] = Pr(H_{i+1} = t | H_i = s).
	Trans [][]float64
	// Emit[s][o] = Pr(O_i = o | H_i = s).
	Emit [][]float64
}

// New returns a zeroed model; callers fill the three distributions and
// should Validate before inference.
func New(states, obs *automata.Alphabet) *Model {
	k, v := states.Size(), obs.Size()
	m := &Model{
		States:  states,
		Obs:     obs,
		Initial: make([]float64, k),
		Trans:   make([][]float64, k),
		Emit:    make([][]float64, k),
	}
	for s := 0; s < k; s++ {
		m.Trans[s] = make([]float64, k)
		m.Emit[s] = make([]float64, v)
	}
	return m
}

// Validate checks that Initial, every Trans row, and every Emit row are
// probability distributions.
func (h *Model) Validate() error {
	if err := checkDist(h.Initial, "initial"); err != nil {
		return err
	}
	for s, row := range h.Trans {
		if err := checkDist(row, fmt.Sprintf("transition row %s", h.States.Name(automata.Symbol(s)))); err != nil {
			return err
		}
	}
	for s, row := range h.Emit {
		if err := checkDist(row, fmt.Sprintf("emission row %s", h.States.Name(automata.Symbol(s)))); err != nil {
			return err
		}
	}
	return nil
}

func checkDist(row []float64, what string) error {
	sum := 0.0
	for _, p := range row {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("hmm: %s has invalid probability %v", what, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("hmm: %s sums to %v, want 1", what, sum)
	}
	return nil
}

// Sample draws a hidden trajectory of length n and its observations.
func (h *Model) Sample(n int, rng *rand.Rand) (hidden, obs []automata.Symbol) {
	hidden = make([]automata.Symbol, n)
	obs = make([]automata.Symbol, n)
	for i := 0; i < n; i++ {
		if i == 0 {
			hidden[i] = sampleRow(h.Initial, rng)
		} else {
			hidden[i] = sampleRow(h.Trans[hidden[i-1]], rng)
		}
		obs[i] = sampleRow(h.Emit[hidden[i]], rng)
	}
	return hidden, obs
}

func sampleRow(row []float64, rng *rand.Rand) automata.Symbol {
	x := rng.Float64()
	acc := 0.0
	last := automata.Symbol(0)
	for s, p := range row {
		if p == 0 {
			continue
		}
		last = automata.Symbol(s)
		acc += p
		if x < acc {
			return last
		}
	}
	return last
}

// forwardScaled runs the scaled forward algorithm. alpha[i][s] is the
// filtering distribution Pr(H_{i+1} = s | O₁..O_{i+1}); scale[i] is the
// per-step normalizer, so that Σ log scale = log likelihood.
func (h *Model) forwardScaled(obs []automata.Symbol) (alpha [][]float64, scale []float64, err error) {
	n := len(obs)
	k := h.States.Size()
	alpha = make([][]float64, n)
	scale = make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, k)
		for s := 0; s < k; s++ {
			var prior float64
			if i == 0 {
				prior = h.Initial[s]
			} else {
				for t := 0; t < k; t++ {
					prior += alpha[i-1][t] * h.Trans[t][s]
				}
			}
			row[s] = prior * h.Emit[s][obs[i]]
		}
		z := 0.0
		for _, p := range row {
			z += p
		}
		if z == 0 {
			return nil, nil, fmt.Errorf("hmm: observation sequence has probability zero at position %d", i+1)
		}
		for s := range row {
			row[s] /= z
		}
		alpha[i] = row
		scale[i] = z
	}
	return alpha, scale, nil
}

// backwardScaled runs the scaled backward algorithm with the forward
// scales: beta[i][s] ∝ Pr(O_{i+2}..O_n | H_{i+1} = s), normalized by the
// same scale factors so that alpha[i][s]·beta[i][s] is the smoothing
// marginal.
func (h *Model) backwardScaled(obs []automata.Symbol, scale []float64) [][]float64 {
	n := len(obs)
	k := h.States.Size()
	beta := make([][]float64, n)
	beta[n-1] = make([]float64, k)
	for s := range beta[n-1] {
		beta[n-1][s] = 1
	}
	for i := n - 2; i >= 0; i-- {
		row := make([]float64, k)
		for s := 0; s < k; s++ {
			v := 0.0
			for t := 0; t < k; t++ {
				v += h.Trans[s][t] * h.Emit[t][obs[i+1]] * beta[i+1][t]
			}
			row[s] = v / scale[i+1]
		}
		beta[i] = row
	}
	return beta
}

// LogLikelihood returns log Pr(O = obs).
func (h *Model) LogLikelihood(obs []automata.Symbol) (float64, error) {
	_, scale, err := h.forwardScaled(obs)
	if err != nil {
		return math.Inf(-1), err
	}
	ll := 0.0
	for _, z := range scale {
		ll += math.Log(z)
	}
	return ll, nil
}

// Posterior returns the smoothing marginals gamma[i][s] =
// Pr(H_{i+1} = s | O = obs).
func (h *Model) Posterior(obs []automata.Symbol) ([][]float64, error) {
	alpha, scale, err := h.forwardScaled(obs)
	if err != nil {
		return nil, err
	}
	beta := h.backwardScaled(obs, scale)
	n := len(obs)
	k := h.States.Size()
	gamma := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, k)
		z := 0.0
		for s := 0; s < k; s++ {
			row[s] = alpha[i][s] * beta[i][s]
			z += row[s]
		}
		for s := range row {
			row[s] /= z
		}
		gamma[i] = row
	}
	return gamma, nil
}

// Viterbi returns the maximum-a-posteriori hidden trajectory given obs.
func (h *Model) Viterbi(obs []automata.Symbol) []automata.Symbol {
	n := len(obs)
	k := h.States.Size()
	negInf := math.Inf(-1)
	score := make([]float64, k)
	back := make([][]int, n)
	for s := 0; s < k; s++ {
		score[s] = logMul(h.Initial[s], h.Emit[s][obs[0]])
	}
	for i := 1; i < n; i++ {
		back[i] = make([]int, k)
		next := make([]float64, k)
		for t := 0; t < k; t++ {
			best, arg := negInf, 0
			for s := 0; s < k; s++ {
				if v := score[s] + logOf(h.Trans[s][t]); v > best {
					best, arg = v, s
				}
			}
			next[t] = best + logOf(h.Emit[t][obs[i]])
			back[i][t] = arg
		}
		score = next
	}
	best, arg := negInf, 0
	for s := 0; s < k; s++ {
		if score[s] > best {
			best, arg = score[s], s
		}
	}
	out := make([]automata.Symbol, n)
	out[n-1] = automata.Symbol(arg)
	for i := n - 1; i >= 1; i-- {
		arg = back[i][arg]
		out[i-1] = automata.Symbol(arg)
	}
	return out
}

func logOf(p float64) float64 {
	if p == 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

func logMul(a, b float64) float64 { return logOf(a) + logOf(b) }

// Condition translates the HMM and an observation sequence into the
// Markov sequence representing Pr(H | O = obs) — the paper's assumed
// preprocessing. The conditional chain is first-order and
// time-inhomogeneous:
//
//	μ₀→(s)    = Pr(H₁ = s | O)
//	μᵢ→(s, t) = Pr(H_{i+1} = t | H_i = s, O)
//	          ∝ Trans[s][t] · Emit[t][O_{i+1}] · β_{i+1}(t)
//
// States s that are unreachable given the observations receive an
// arbitrary valid row (they never matter, but markov.Validate requires
// stochastic rows).
func (h *Model) Condition(obs []automata.Symbol) (*markov.Sequence, error) {
	n := len(obs)
	if n == 0 {
		return nil, fmt.Errorf("hmm: empty observation sequence")
	}
	alpha, scale, err := h.forwardScaled(obs)
	if err != nil {
		return nil, err
	}
	beta := h.backwardScaled(obs, scale)
	k := h.States.Size()
	m := markov.New(h.States, n)
	// Initial distribution: smoothing marginal at position 1.
	z := 0.0
	for s := 0; s < k; s++ {
		m.Initial[s] = alpha[0][s] * beta[0][s]
		z += m.Initial[s]
	}
	for s := range m.Initial {
		m.Initial[s] /= z
	}
	for i := 1; i < n; i++ {
		for s := 0; s < k; s++ {
			row := m.Trans[i-1][s]
			z := 0.0
			for t := 0; t < k; t++ {
				row[t] = h.Trans[s][t] * h.Emit[t][obs[i]] * beta[i][t]
				z += row[t]
			}
			if z == 0 {
				// s is impossible at position i given the observations;
				// fill with a harmless self-loop.
				row[s] = 1
				continue
			}
			for t := range row {
				row[t] /= z
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Prior returns the unconditional hidden-state chain of length n as a
// Markov sequence (no observations), useful as a baseline.
func (h *Model) Prior(n int) *markov.Sequence {
	return markov.Homogeneous(h.States, n, h.Initial, h.Trans)
}
