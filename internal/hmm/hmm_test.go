package hmm

import (
	"math"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
)

// randomModel builds a random valid HMM.
func randomModel(states, obs *automata.Alphabet, rng *rand.Rand) *Model {
	h := New(states, obs)
	fill := func(row []float64) {
		z := 0.0
		for i := range row {
			row[i] = 0.05 + rng.Float64()
			z += row[i]
		}
		for i := range row {
			row[i] /= z
		}
	}
	fill(h.Initial)
	for s := range h.Trans {
		fill(h.Trans[s])
		fill(h.Emit[s])
	}
	return h
}

// jointProb computes Pr(H = hidden, O = obs) directly.
func jointProb(h *Model, hidden, obs []automata.Symbol) float64 {
	p := h.Initial[hidden[0]] * h.Emit[hidden[0]][obs[0]]
	for i := 1; i < len(obs); i++ {
		p *= h.Trans[hidden[i-1]][hidden[i]] * h.Emit[hidden[i]][obs[i]]
	}
	return p
}

// enumerate all hidden trajectories of length n.
func allHidden(k, n int, fn func([]automata.Symbol)) {
	buf := make([]automata.Symbol, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			fn(buf)
			return
		}
		for s := 0; s < k; s++ {
			buf[i] = automata.Symbol(s)
			rec(i + 1)
		}
	}
	rec(0)
}

func TestValidate(t *testing.T) {
	states := automata.MustAlphabet("s1", "s2")
	obs := automata.MustAlphabet("o1", "o2")
	h := New(states, obs)
	if err := h.Validate(); err == nil {
		t.Fatal("zero model should fail validation")
	}
	h = randomModel(states, obs, rand.New(rand.NewSource(1)))
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLogLikelihoodAgainstBruteForce(t *testing.T) {
	states := automata.MustAlphabet("a", "b", "c")
	obsAb := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		h := randomModel(states, obsAb, rng)
		n := 1 + rng.Intn(5)
		obs := make([]automata.Symbol, n)
		for i := range obs {
			obs[i] = automata.Symbol(rng.Intn(obsAb.Size()))
		}
		want := 0.0
		allHidden(states.Size(), n, func(hid []automata.Symbol) {
			want += jointProb(h, hid, obs)
		})
		got, err := h.LogLikelihood(obs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(math.Exp(got)-want) > 1e-9 {
			t.Fatalf("trial %d: likelihood %v, want %v", trial, math.Exp(got), want)
		}
	}
}

func TestPosteriorAgainstBruteForce(t *testing.T) {
	states := automata.MustAlphabet("a", "b")
	obsAb := automata.MustAlphabet("x", "y", "z")
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		h := randomModel(states, obsAb, rng)
		n := 2 + rng.Intn(4)
		obs := make([]automata.Symbol, n)
		for i := range obs {
			obs[i] = automata.Symbol(rng.Intn(obsAb.Size()))
		}
		total := 0.0
		marg := make([][]float64, n)
		for i := range marg {
			marg[i] = make([]float64, states.Size())
		}
		allHidden(states.Size(), n, func(hid []automata.Symbol) {
			p := jointProb(h, hid, obs)
			total += p
			for i, s := range hid {
				marg[i][s] += p
			}
		})
		gamma, err := h.Posterior(obs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for s := 0; s < states.Size(); s++ {
				if math.Abs(gamma[i][s]-marg[i][s]/total) > 1e-9 {
					t.Fatalf("trial %d: posterior[%d][%d] = %v, want %v",
						trial, i, s, gamma[i][s], marg[i][s]/total)
				}
			}
		}
	}
}

func TestViterbiAgainstBruteForce(t *testing.T) {
	states := automata.MustAlphabet("a", "b", "c")
	obsAb := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		h := randomModel(states, obsAb, rng)
		n := 1 + rng.Intn(4)
		obs := make([]automata.Symbol, n)
		for i := range obs {
			obs[i] = automata.Symbol(rng.Intn(obsAb.Size()))
		}
		bestP := -1.0
		var best []automata.Symbol
		allHidden(states.Size(), n, func(hid []automata.Symbol) {
			if p := jointProb(h, hid, obs); p > bestP {
				bestP = p
				best = automata.CloneString(hid)
			}
		})
		got := h.Viterbi(obs)
		if math.Abs(jointProb(h, got, obs)-bestP) > 1e-12 {
			t.Fatalf("trial %d: Viterbi %v (p=%v), brute %v (p=%v)",
				trial, got, jointProb(h, got, obs), best, bestP)
		}
	}
}

// TestConditionMatchesPosteriorOfTrajectories is the key translation test:
// the probability the conditioned Markov sequence assigns to any hidden
// trajectory equals Pr(H = hid | O = obs).
func TestConditionMatchesPosteriorOfTrajectories(t *testing.T) {
	states := automata.MustAlphabet("a", "b")
	obsAb := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		h := randomModel(states, obsAb, rng)
		n := 1 + rng.Intn(5)
		obs := make([]automata.Symbol, n)
		for i := range obs {
			obs[i] = automata.Symbol(rng.Intn(obsAb.Size()))
		}
		m, err := h.Condition(obs)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		total := 0.0
		allHidden(states.Size(), n, func(hid []automata.Symbol) {
			total += jointProb(h, hid, obs)
		})
		allHidden(states.Size(), n, func(hid []automata.Symbol) {
			want := jointProb(h, hid, obs) / total
			if got := m.Prob(hid); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: conditioned Prob(%v) = %v, want %v", trial, hid, got, want)
			}
		})
	}
}

func TestConditionImpossibleObservation(t *testing.T) {
	states := automata.MustAlphabet("a")
	obsAb := automata.MustAlphabet("x", "y")
	h := New(states, obsAb)
	h.Initial[0] = 1
	h.Trans[0][0] = 1
	h.Emit[0][0] = 1 // only ever emits x
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Condition([]automata.Symbol{1}); err == nil {
		t.Fatal("conditioning on an impossible observation should fail")
	}
	if _, err := h.Condition(nil); err == nil {
		t.Fatal("conditioning on empty observations should fail")
	}
}

func TestPriorAndSample(t *testing.T) {
	states := automata.MustAlphabet("a", "b")
	obsAb := automata.MustAlphabet("x", "y")
	rng := rand.New(rand.NewSource(9))
	h := randomModel(states, obsAb, rng)
	prior := h.Prior(6)
	if err := prior.Validate(); err != nil {
		t.Fatal(err)
	}
	hid, obs := h.Sample(6, rng)
	if len(hid) != 6 || len(obs) != 6 {
		t.Fatal("Sample lengths wrong")
	}
}
