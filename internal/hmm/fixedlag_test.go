package hmm

import (
	"math"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/markov"
)

// sequenceOf reassembles the commits (in Pos order, gapless) into the
// Markov sequence they encode.
func sequenceOf(t *testing.T, states *automata.Alphabet, commits []Commit) *markov.Sequence {
	t.Helper()
	n := len(commits)
	if n == 0 {
		t.Fatal("no commits")
	}
	m := markov.New(states, n)
	for i, c := range commits {
		if c.Pos != i+1 {
			t.Fatalf("commit %d has Pos %d, want %d (commits must be gapless and ordered)", i, c.Pos, i+1)
		}
		if c.Pos == 1 {
			if c.Initial == nil || c.Trans != nil {
				t.Fatalf("commit Pos=1 must set Initial only (Initial=%v Trans=%v)", c.Initial, c.Trans)
			}
			copy(m.Initial, c.Initial)
			continue
		}
		if c.Trans == nil || c.Initial != nil {
			t.Fatalf("commit Pos=%d must set Trans only", c.Pos)
		}
		for s, row := range c.Trans {
			copy(m.Trans[c.Pos-2][s], row)
		}
	}
	return m
}

// TestFixedLagFullLagMatchesCondition: with lag ≥ n-1 every backward
// horizon spans the full suffix, so Observe+Flush must reproduce
// Condition's conditional chain up to floating-point roundoff.
func TestFixedLagFullLagMatchesCondition(t *testing.T) {
	states := automata.MustAlphabet("a", "b", "c")
	obsAb := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(400 + trial)))
		h := randomModel(states, obsAb, rng)
		n := 2 + rng.Intn(5)
		obs := make([]automata.Symbol, n)
		for i := range obs {
			obs[i] = automata.Symbol(rng.Intn(obsAb.Size()))
		}
		want, err := h.Condition(obs)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := NewFixedLagSmoother(h, n-1)
		if err != nil {
			t.Fatal(err)
		}
		var commits []Commit
		for _, o := range obs {
			cs, err := sm.Observe(o)
			if err != nil {
				t.Fatal(err)
			}
			commits = append(commits, cs...)
		}
		commits = append(commits, sm.Flush()...)
		if len(commits) != n {
			t.Fatalf("trial %d: %d commits, want %d", trial, len(commits), n)
		}
		got := sequenceOf(t, states, commits)
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: committed sequence invalid: %v", trial, err)
		}
		for s := range want.Initial {
			if math.Abs(got.Initial[s]-want.Initial[s]) > 1e-9 {
				t.Fatalf("trial %d: Initial[%d] = %v, want %v", trial, s, got.Initial[s], want.Initial[s])
			}
		}
		for i := range want.Trans {
			for s := range want.Trans[i] {
				for u := range want.Trans[i][s] {
					if math.Abs(got.Trans[i][s][u]-want.Trans[i][s][u]) > 1e-9 {
						t.Fatalf("trial %d: Trans[%d][%d][%d] = %v, want %v",
							trial, i, s, u, got.Trans[i][s][u], want.Trans[i][s][u])
					}
				}
			}
		}
	}
}

// TestFixedLagCommitSchedule: a lag-L smoother commits nothing for the
// first L observations, exactly one position per observation afterwards,
// and Flush drains the remaining L buffered positions.
func TestFixedLagCommitSchedule(t *testing.T) {
	states := automata.MustAlphabet("a", "b")
	obsAb := automata.MustAlphabet("x", "y", "z")
	rng := rand.New(rand.NewSource(500))
	h := randomModel(states, obsAb, rng)
	const n = 12
	for _, lag := range []int{0, 1, 3, n - 1, n + 5} {
		sm, err := NewFixedLagSmoother(h, lag)
		if err != nil {
			t.Fatal(err)
		}
		_, obs := h.Sample(n, rng)
		total := 0
		for i, o := range obs {
			cs, err := sm.Observe(o)
			if err != nil {
				t.Fatal(err)
			}
			wantLen := 0
			if i+1 > lag {
				wantLen = 1
			}
			if len(cs) != wantLen {
				t.Fatalf("lag %d: observation %d committed %d positions, want %d", lag, i+1, len(cs), wantLen)
			}
			total += len(cs)
			if sm.Len() != i+1 || sm.Committed() != total {
				t.Fatalf("lag %d: Len/Committed = %d/%d, want %d/%d", lag, sm.Len(), sm.Committed(), i+1, total)
			}
		}
		flushed := sm.Flush()
		if total+len(flushed) != n {
			t.Fatalf("lag %d: %d observe-commits + %d flushed, want %d total", lag, total, len(flushed), n)
		}
		if sm.Committed() != n {
			t.Fatalf("lag %d: Committed after Flush = %d, want %d", lag, sm.Committed(), n)
		}
	}
}

// TestFixedLagRowsValid: commits are always valid distributions, for any
// lag (the truncated-horizon approximation must still be stochastic).
func TestFixedLagRowsValid(t *testing.T) {
	states := automata.MustAlphabet("a", "b", "c")
	obsAb := automata.MustAlphabet("x", "y")
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(600 + trial)))
		h := randomModel(states, obsAb, rng)
		for _, lag := range []int{0, 1, 2} {
			sm, err := NewFixedLagSmoother(h, lag)
			if err != nil {
				t.Fatal(err)
			}
			_, obs := h.Sample(8, rng)
			var commits []Commit
			for _, o := range obs {
				cs, err := sm.Observe(o)
				if err != nil {
					t.Fatal(err)
				}
				commits = append(commits, cs...)
			}
			commits = append(commits, sm.Flush()...)
			m := sequenceOf(t, states, commits)
			if err := m.Validate(); err != nil {
				t.Fatalf("trial %d lag %d: %v", trial, lag, err)
			}
		}
	}
}

// TestFixedLagImpossibleObservation: a zero-probability observation
// errors and leaves the smoother untouched (the next valid observation
// continues as if the bad one never happened).
func TestFixedLagImpossibleObservation(t *testing.T) {
	states := automata.MustAlphabet("a")
	obsAb := automata.MustAlphabet("x", "y")
	h := New(states, obsAb)
	h.Initial[0] = 1
	h.Trans[0][0] = 1
	h.Emit[0][0] = 1 // only ever emits x
	sm, err := NewFixedLagSmoother(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Observe(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Observe(1); err == nil {
		t.Fatal("impossible observation should fail")
	}
	if sm.Len() != 1 || sm.Committed() != 1 {
		t.Fatalf("failed Observe mutated the smoother: Len=%d Committed=%d", sm.Len(), sm.Committed())
	}
	cs, err := sm.Observe(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].Pos != 2 {
		t.Fatalf("recovery commit = %+v, want Pos 2", cs)
	}
}

// TestFixedLagRollback: Rollback undoes the last Observe exactly — the
// replayed observation produces the same commits, and the final chain
// matches an uninterrupted run bit for bit.
func TestFixedLagRollback(t *testing.T) {
	states := automata.MustAlphabet("a", "b")
	obsAb := automata.MustAlphabet("x", "y")
	rng := rand.New(rand.NewSource(700))
	h := randomModel(states, obsAb, rng)
	_, obs := h.Sample(9, rng)
	const lag = 2

	run := func(rollbackAt int) []Commit {
		sm, err := NewFixedLagSmoother(h, lag)
		if err != nil {
			t.Fatal(err)
		}
		var commits []Commit
		for i, o := range obs {
			cs, err := sm.Observe(o)
			if err != nil {
				t.Fatal(err)
			}
			if i == rollbackAt {
				// Pretend the store rejected the commits: undo and replay.
				sm.Rollback()
				cs, err = sm.Observe(o)
				if err != nil {
					t.Fatal(err)
				}
			}
			commits = append(commits, cs...)
		}
		return append(commits, sm.Flush()...)
	}

	want := run(-1)
	for _, at := range []int{0, 1, lag, lag + 1, len(obs) - 1} {
		got := run(at)
		if len(got) != len(want) {
			t.Fatalf("rollback at %d: %d commits, want %d", at, len(got), len(want))
		}
		for i := range want {
			if got[i].Pos != want[i].Pos {
				t.Fatalf("rollback at %d: commit %d Pos %d, want %d", at, i, got[i].Pos, want[i].Pos)
			}
			for s, v := range want[i].Initial {
				if got[i].Initial[s] != v {
					t.Fatalf("rollback at %d: commit %d Initial[%d] = %v, want %v", at, i, s, got[i].Initial[s], v)
				}
			}
			for s, row := range want[i].Trans {
				for u, v := range row {
					if got[i].Trans[s][u] != v {
						t.Fatalf("rollback at %d: commit %d Trans[%d][%d] = %v, want %v",
							at, i, s, u, got[i].Trans[s][u], v)
					}
				}
			}
		}
	}

	// A second Rollback without an intervening Observe must panic.
	sm, err := NewFixedLagSmoother(h, lag)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Observe(obs[0]); err != nil {
		t.Fatal(err)
	}
	sm.Rollback()
	defer func() {
		if recover() == nil {
			t.Fatal("double Rollback should panic")
		}
	}()
	sm.Rollback()
}

func TestFixedLagNegativeLag(t *testing.T) {
	states := automata.MustAlphabet("a", "b")
	obsAb := automata.MustAlphabet("x")
	h := randomModel(states, obsAb, rand.New(rand.NewSource(1)))
	if _, err := NewFixedLagSmoother(h, -1); err == nil {
		t.Fatal("negative lag should fail")
	}
}
