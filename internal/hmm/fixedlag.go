package hmm

import (
	"fmt"

	"markovseq/internal/automata"
)

// Fixed-lag smoothing: the online variant of Condition. Exact smoothing
// is inherently whole-sequence — a new observation revises the
// posterior of every earlier position, which is why re-smoothing per
// append costs O(n·|S|²). A fixed-lag smoother instead freezes
// ("commits") position p once L observations beyond it have arrived,
// computing its conditional-chain row from the length-L backward horizon
// only. Each observation then costs O(L·|S|²) regardless of stream
// length, and the committed rows feed an append-only store
// (lahar.DB.AppendEvents) instead of wholesale stream replacement. With
// L at least the final sequence length minus one, the committed rows
// (after Flush) coincide with Condition's up to floating-point
// tolerance.

// Commit is one position of the conditional chain frozen by the
// smoother. Pos is 1-based: Pos == 1 carries the chain's initial
// distribution (Initial set, Trans nil); Pos > 1 carries the transition
// matrix μ_{Pos-1}→ from position Pos-1 to Pos (Trans set, Initial
// nil). Committed in increasing Pos order with no gaps.
type Commit struct {
	Pos     int
	Initial []float64
	Trans   [][]float64
}

// FixedLagSmoother turns an observation stream into conditional-chain
// commits with a fixed smoothing lag. Not safe for concurrent use.
type FixedLagSmoother struct {
	h   *Model
	lag int

	// alpha is the filtering distribution Pr(H_n = s | O₁..O_n); it
	// detects impossible observations exactly as forwardScaled does.
	alpha []float64
	// buf holds the observations of the uncommitted positions
	// committed+1 .. count (at most lag+1 of them after the commit loop).
	buf []automata.Symbol
	// count is the number of observations seen; committed the number of
	// positions committed.
	count, committed int

	// One-deep undo state for Rollback (restores the smoother to before
	// the last successful Observe).
	undoAlpha     []float64
	undoBuf       []automata.Symbol
	undoCount     int
	undoCommitted int
	undoValid     bool
}

// NewFixedLagSmoother returns a smoother with the given lag (≥ 0): a
// position is committed once lag observations beyond it have arrived.
// Lag 0 commits every position immediately from the filter alone.
func NewFixedLagSmoother(h *Model, lag int) (*FixedLagSmoother, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if lag < 0 {
		return nil, fmt.Errorf("hmm: fixed lag %d < 0", lag)
	}
	return &FixedLagSmoother{h: h, lag: lag}, nil
}

// Len returns the number of observations seen so far.
func (f *FixedLagSmoother) Len() int { return f.count }

// Committed returns the number of positions committed so far.
func (f *FixedLagSmoother) Committed() int { return f.committed }

// Observe feeds one observation and returns the positions it commits
// (none during the first lag observations, exactly one per observation
// afterwards). An observation with zero probability under the model
// returns an error and leaves the smoother unchanged.
func (f *FixedLagSmoother) Observe(sym automata.Symbol) ([]Commit, error) {
	k := f.h.States.Size()
	next := make([]float64, k)
	z := 0.0
	for s := 0; s < k; s++ {
		var prior float64
		if f.count == 0 {
			prior = f.h.Initial[s]
		} else {
			for t := 0; t < k; t++ {
				prior += f.alpha[t] * f.h.Trans[t][s]
			}
		}
		next[s] = prior * f.h.Emit[s][sym]
		z += next[s]
	}
	if z == 0 {
		return nil, fmt.Errorf("hmm: observation sequence has probability zero at position %d", f.count+1)
	}
	for s := range next {
		next[s] /= z
	}

	f.undoAlpha = append(f.undoAlpha[:0], f.alpha...)
	f.undoBuf = append(f.undoBuf[:0], f.buf...)
	f.undoCount, f.undoCommitted = f.count, f.committed
	f.undoValid = true

	f.alpha = next
	f.buf = append(f.buf, sym)
	f.count++

	var out []Commit
	for f.count-f.committed > f.lag {
		out = append(out, f.commitFront())
	}
	return out, nil
}

// Rollback restores the smoother to its state before the last
// successful Observe — the undo hook for callers whose store rejected
// the commits. One level deep; a second Rollback without an intervening
// Observe panics.
func (f *FixedLagSmoother) Rollback() {
	if !f.undoValid {
		panic("hmm: FixedLagSmoother.Rollback without a preceding Observe")
	}
	f.alpha = append(f.alpha[:0], f.undoAlpha...)
	if f.undoCount == 0 {
		f.alpha = nil
	}
	f.buf = append(f.buf[:0], f.undoBuf...)
	f.count, f.committed = f.undoCount, f.undoCommitted
	f.undoValid = false
}

// Flush commits every remaining buffered position with a truncated
// backward horizon (the observations available), emptying the buffer.
// After feeding n observations through a smoother with lag ≥ n-1, Flush
// yields exactly the rows of Condition (up to floating-point roundoff),
// since every horizon then spans the full suffix.
func (f *FixedLagSmoother) Flush() []Commit {
	var out []Commit
	for f.committed < f.count {
		out = append(out, f.commitFront())
	}
	f.undoValid = false
	return out
}

// commitFront freezes position committed+1 from the backward horizon
// buf[0:min(lag+1, len(buf))] and pops its observation off the buffer.
func (f *FixedLagSmoother) commitFront() Commit {
	k := f.h.States.Size()
	horizon := f.buf
	if len(horizon) > f.lag+1 {
		horizon = horizon[:f.lag+1]
	}
	beta := f.betaOver(horizon)
	pos := f.committed + 1
	c := Commit{Pos: pos}
	if pos == 1 {
		// μ₀→(s) ∝ Initial[s]·Emit[s][O₁]·β(s) — Condition's smoothing
		// marginal at position 1, restricted to the horizon.
		init := make([]float64, k)
		z := 0.0
		for s := 0; s < k; s++ {
			init[s] = f.h.Initial[s] * f.h.Emit[s][horizon[0]] * beta[s]
			z += init[s]
		}
		for s := range init {
			init[s] /= z
		}
		c.Initial = init
	} else {
		// μ_{pos-1}→(s, t) ∝ Trans[s][t]·Emit[t][O_pos]·β(t), exactly
		// Condition's row with β restricted to the horizon; states
		// impossible given the observations get a harmless self-loop.
		mat := make([][]float64, k)
		for s := 0; s < k; s++ {
			row := make([]float64, k)
			z := 0.0
			for t := 0; t < k; t++ {
				row[t] = f.h.Trans[s][t] * f.h.Emit[t][horizon[0]] * beta[t]
				z += row[t]
			}
			if z == 0 {
				row[s] = 1
			} else {
				for t := range row {
					row[t] /= z
				}
			}
			mat[s] = row
		}
		c.Trans = mat
	}
	f.committed++
	f.buf = f.buf[1:]
	return c
}

// betaOver runs the backward pass over the horizon: beta[s] ∝
// Pr(O₂..O_H | H₁ = s) for the horizon's own positions, normalized per
// level to dodge underflow (the commit rows normalize again, so the
// scale cancels — the same invariance backwardScaled gets from its
// forward scales).
func (f *FixedLagSmoother) betaOver(horizon []automata.Symbol) []float64 {
	k := f.h.States.Size()
	beta := make([]float64, k)
	for s := range beta {
		beta[s] = 1
	}
	next := make([]float64, k)
	for j := len(horizon) - 2; j >= 0; j-- {
		z := 0.0
		for s := 0; s < k; s++ {
			v := 0.0
			for t := 0; t < k; t++ {
				v += f.h.Trans[s][t] * f.h.Emit[t][horizon[j+1]] * beta[t]
			}
			next[s] = v
			z += v
		}
		if z != 0 {
			for s := range next {
				next[s] /= z
			}
		}
		beta, next = next, beta
	}
	return beta
}
