package rfid

import (
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/conf"
	"markovseq/internal/ranked"
	"markovseq/internal/transducer"
)

func TestHospitalFloorplan(t *testing.T) {
	f := Hospital(3, 2)
	if len(f.Places) != 5 { // hall, lab, r1..r3
		t.Fatalf("places = %d, want 5", len(f.Places))
	}
	ab := f.LocationAlphabet()
	if ab.Size() != 10 {
		t.Fatalf("locations = %d, want 10", ab.Size())
	}
	if got := f.PlaceOf(ab, ab.MustSymbol("lab_a")); f.Places[got].Name != "lab" {
		t.Fatalf("PlaceOf(lab_a) = %d", got)
	}
	// Adjacency is symmetric and the hallway touches everything.
	if len(f.Adjacent[0]) != 4 {
		t.Fatalf("hall adjacency = %v", f.Adjacent[0])
	}
}

func TestBuildHMMValid(t *testing.T) {
	f := Hospital(2, 2)
	h := BuildHMM(f, DefaultNoise)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero-noise model emits the correct sensor always.
	h2 := BuildHMM(f, Noise{Miss: 0, Confuse: 0, Dwell: 0.5})
	if err := h2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateAndQuery(t *testing.T) {
	f := Hospital(2, 2)
	h := BuildHMM(f, DefaultNoise)
	rng := rand.New(rand.NewSource(42))
	tr, err := Simulate(h, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Seq.Len() != 8 || len(tr.Hidden) != 8 || len(tr.Obs) != 8 {
		t.Fatal("trace lengths wrong")
	}
	// The smoothed sequence assigns positive probability to the true
	// trajectory (it has positive prior and positive likelihood).
	if tr.Seq.Prob(tr.Hidden) <= 0 {
		t.Fatal("true trajectory should have positive smoothed probability")
	}
	// Query with the place transducer: the top E_max answer exists.
	q := PlaceTransducer(f, "lab")
	if !q.IsDeterministic() {
		t.Fatal("place transducer should be deterministic")
	}
	e := ranked.NewEnumerator(q, tr.Seq)
	a, ok := e.Next()
	if !ok {
		t.Fatal("lab is reachable; a top answer should exist")
	}
	// Its confidence is computable (deterministic transducer) and at
	// least its E_max.
	c := conf.Det(q, tr.Seq, a.Output)
	if c <= 0 {
		t.Fatalf("top answer confidence = %v", c)
	}
}

func TestPlaceTransducerSemantics(t *testing.T) {
	f := Hospital(2, 1)
	in := f.LocationAlphabet()
	q := PlaceTransducer(f, "lab")
	out := f.PlaceAlphabet()
	// hall → lab → r1 → r1 → hall: after lab, emits r1 (enter), hall (enter).
	s := in.MustParseString("hall_a lab_a r1_a r1_a hall_a")
	got, ok := q.TransduceDet(s)
	if !ok {
		t.Fatal("string should be accepted (lab visited)")
	}
	if want := out.MustParseString("r1 hall"); !automata.EqualStrings(got, want) {
		t.Fatalf("output = %v, want %v", out.FormatString(got), out.FormatString(want))
	}
	// Never visiting the lab: rejected.
	if _, ok := q.TransduceDet(in.MustParseString("hall_a r1_a hall_a r2_a hall_a")); ok {
		t.Fatal("no-lab string should be rejected")
	}
}

func TestPathProjector(t *testing.T) {
	f := Hospital(2, 1)
	b, a, e := PathProjector(f, "lab", "r1").Build()
	in := f.LocationAlphabet()
	// b accepts strings ending in the lab.
	if !b.Accepts(in.MustParseString("hall_a lab_a")) || b.Accepts(in.MustParseString("lab_a hall_a")) {
		t.Fatal("prefix constraint wrong")
	}
	if !a.Accepts(in.MustParseString("hall_a r1_a")) || a.Accepts(nil) {
		t.Fatal("pattern wrong")
	}
	if !e.IsUniversal() {
		t.Fatal("suffix constraint should be universal")
	}
	_ = transducer.Unconstrained // keep import shape stable
}
