// Package rfid is the synthetic workload generator for the paper's
// motivating application (Section 1 / Example 3.1): RFID tracking of
// equipment in a hospital. The paper's evaluation context (the Lahar
// system) used real deployment traces, which are proprietary; this package
// substitutes a generative simulator with the same structure — a floorplan
// of places, each containing several sub-locations with a sensor; a
// transmitter that moves between adjacent locations with dwell behavior;
// and a noisy sensing model (missed and confused readings). The simulated
// readings are smoothed with the HMM machinery (package hmm) into exactly
// the kind of Markov sequence the paper queries, so every downstream code
// path is exercised identically to a real deployment.
package rfid

import (
	"fmt"
	"math/rand"

	"markovseq/internal/automata"
	"markovseq/internal/hmm"
	"markovseq/internal/markov"
	"markovseq/internal/transducer"
)

// Place is a named area of the floorplan (a room, a lab, a hallway)
// containing one or more sub-locations, each with its own sensor.
type Place struct {
	Name      string
	Locations []string // fully qualified sub-location names
}

// Floorplan is the hospital layout: places and an adjacency relation over
// places (movement between places goes through adjacency; movement within
// a place is free).
type Floorplan struct {
	Places []Place
	// Adjacent[i] lists the indices of places adjacent to place i.
	Adjacent [][]int
}

// LocationAlphabet returns the alphabet of all sub-locations, in place
// order. This is the hidden-state alphabet of the movement HMM and the
// node alphabet of the resulting Markov sequences.
func (f *Floorplan) LocationAlphabet() *automata.Alphabet {
	var names []string
	for _, p := range f.Places {
		names = append(names, p.Locations...)
	}
	return automata.MustAlphabet(names...)
}

// PlaceOf returns the index of the place containing the location symbol.
func (f *Floorplan) PlaceOf(a *automata.Alphabet, s automata.Symbol) int {
	name := a.Name(s)
	for i, p := range f.Places {
		for _, l := range p.Locations {
			if l == name {
				return i
			}
		}
	}
	panic(fmt.Sprintf("rfid: location %q not in floorplan", name))
}

// Hospital builds a floorplan with the given number of rooms, one lab and
// one hallway; every room and the lab adjoin the hallway, and each place
// has locsPerPlace sub-locations.
func Hospital(rooms, locsPerPlace int) *Floorplan {
	f := &Floorplan{}
	addPlace := func(name string) int {
		var locs []string
		for l := 0; l < locsPerPlace; l++ {
			locs = append(locs, fmt.Sprintf("%s_%c", name, 'a'+l))
		}
		f.Places = append(f.Places, Place{Name: name, Locations: locs})
		return len(f.Places) - 1
	}
	hall := addPlace("hall")
	lab := addPlace("lab")
	f.Adjacent = make([][]int, 2+rooms)
	link := func(a, b int) {
		f.Adjacent[a] = append(f.Adjacent[a], b)
		f.Adjacent[b] = append(f.Adjacent[b], a)
	}
	link(hall, lab)
	for r := 1; r <= rooms; r++ {
		id := addPlace(fmt.Sprintf("r%d", r))
		link(hall, id)
	}
	return f
}

// Noise parametrizes the sensing model.
type Noise struct {
	// Miss is the probability a reading is dropped (observed as "none").
	Miss float64
	// Confuse is the probability the reading is attributed to a uniformly
	// random location of an adjacent place (sensors near passages).
	Confuse float64
	// Dwell is the probability of staying at the current location per step.
	Dwell float64
}

// DefaultNoise is a moderately noisy deployment.
var DefaultNoise = Noise{Miss: 0.15, Confuse: 0.1, Dwell: 0.5}

// BuildHMM constructs the movement/sensing HMM: hidden states are
// sub-locations; observations are sensor identifiers plus "none" (missed
// reading).
func BuildHMM(f *Floorplan, noise Noise) *hmm.Model {
	states := f.LocationAlphabet()
	obsNames := []string{"none"}
	for _, p := range f.Places {
		for _, l := range p.Locations {
			obsNames = append(obsNames, "s_"+l)
		}
	}
	obs := automata.MustAlphabet(obsNames...)
	h := hmm.New(states, obs)

	// Uniform initial distribution over the hallway locations (equipment
	// starts in the hallway).
	hallLocs := f.Places[0].Locations
	for _, l := range hallLocs {
		h.Initial[states.MustSymbol(l)] = 1 / float64(len(hallLocs))
	}

	// Movement: stay with Dwell; otherwise move to a uniformly random
	// location of the same or an adjacent place.
	for _, sym := range states.Symbols() {
		pi := f.PlaceOf(states, sym)
		var targets []automata.Symbol
		for _, l := range f.Places[pi].Locations {
			if t := states.MustSymbol(l); t != sym {
				targets = append(targets, t)
			}
		}
		for _, adj := range f.Adjacent[pi] {
			for _, l := range f.Places[adj].Locations {
				targets = append(targets, states.MustSymbol(l))
			}
		}
		h.Trans[sym][sym] = noise.Dwell
		for _, t := range targets {
			h.Trans[sym][t] += (1 - noise.Dwell) / float64(len(targets))
		}
	}

	// Sensing: correct sensor with 1−Miss−Confuse; "none" with Miss;
	// a sensor of an adjacent place with Confuse.
	for _, sym := range states.Symbols() {
		pi := f.PlaceOf(states, sym)
		var confuseTargets []automata.Symbol
		for _, adj := range f.Adjacent[pi] {
			for _, l := range f.Places[adj].Locations {
				confuseTargets = append(confuseTargets, obs.MustSymbol("s_"+l))
			}
		}
		h.Emit[sym][obs.MustSymbol("none")] = noise.Miss
		h.Emit[sym][obs.MustSymbol("s_"+states.Name(sym))] = 1 - noise.Miss - noise.Confuse
		for _, t := range confuseTargets {
			h.Emit[sym][t] += noise.Confuse / float64(len(confuseTargets))
		}
	}
	if err := h.Validate(); err != nil {
		panic(err)
	}
	return h
}

// Trace is one simulated deployment trace.
type Trace struct {
	// Hidden is the true trajectory (ground truth, unknown in deployment).
	Hidden []automata.Symbol
	// Obs is the sensor reading sequence.
	Obs []automata.Symbol
	// Seq is the smoothed Markov sequence Pr(H | Obs) — the queryable
	// artifact, exactly the paper's data model.
	Seq *markov.Sequence
}

// Simulate runs the HMM for n steps and smooths the readings into a
// Markov sequence.
func Simulate(h *hmm.Model, n int, rng *rand.Rand) (*Trace, error) {
	hidden, obs := h.Sample(n, rng)
	seq, err := h.Condition(obs)
	if err != nil {
		return nil, err
	}
	return &Trace{Hidden: hidden, Obs: obs, Seq: seq}, nil
}

// PlaceAlphabet returns the output alphabet with one symbol per place.
func (f *Floorplan) PlaceAlphabet() *automata.Alphabet {
	names := make([]string, len(f.Places))
	for i, p := range f.Places {
		names[i] = p.Name
	}
	return automata.MustAlphabet(names...)
}

// PlaceTransducer builds the Figure-2-style query for an arbitrary
// floorplan: after the first visit to the trigger place (e.g. the lab),
// emit the place symbol whenever the transmitter enters a place from a
// different place. State 0 is "before the trigger"; state 1+i is
// "currently in place i".
func PlaceTransducer(f *Floorplan, trigger string) *transducer.Transducer {
	in := f.LocationAlphabet()
	out := f.PlaceAlphabet()
	triggerIdx := -1
	for i, p := range f.Places {
		if p.Name == trigger {
			triggerIdx = i
		}
	}
	if triggerIdx < 0 {
		panic(fmt.Sprintf("rfid: trigger place %q not in floorplan", trigger))
	}
	t := transducer.New(in, out, 1+len(f.Places), 0)
	for i := range f.Places {
		t.SetAccepting(1+i, true)
	}
	for _, sym := range in.Symbols() {
		pi := f.PlaceOf(in, sym)
		if pi == triggerIdx {
			t.AddTransition(0, sym, 1+pi, nil)
		} else {
			t.AddTransition(0, sym, 0, nil)
		}
		for from := range f.Places {
			if from == pi {
				t.AddTransition(1+from, sym, 1+pi, nil)
			} else {
				t.AddTransition(1+from, sym, 1+pi, []automata.Symbol{automata.Symbol(pi)})
			}
		}
	}
	return t
}

// PathProjector builds the Example 5.1 query as an s-projector: extract
// the location path from the first time the transmitter is inside the
// `from` place until it reaches the `to` place, i.e.
// B = ".*<from-loc>", A = "(any)*<to-loc>"-style. Concretely:
// B accepts strings ending at a location of `from`; A accepts strings
// ending at a location of `to`; E is universal.
func PathProjector(f *Floorplan, from, to string) *sprojSpec {
	return &sprojSpec{f: f, from: from, to: to}
}

// sprojSpec defers DFA construction so the caller can decide on the
// alphabet; Build produces the three DFAs.
type sprojSpec struct {
	f        *Floorplan
	from, to string
}

// Build returns (B, A, E) over the floorplan's location alphabet.
func (s *sprojSpec) Build() (b, a, e *automata.DFA) {
	in := s.f.LocationAlphabet()
	b = endsInPlace(s.f, in, s.from)
	a = endsInPlace(s.f, in, s.to)
	e = automata.Universal(in)
	return b, a, e
}

// endsInPlace returns a DFA accepting the strings whose last symbol is a
// location of the named place (and rejecting ε).
func endsInPlace(f *Floorplan, in *automata.Alphabet, place string) *automata.DFA {
	idx := -1
	for i, p := range f.Places {
		if p.Name == place {
			idx = i
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("rfid: place %q not in floorplan", place))
	}
	d := automata.NewDFA(in, 2, 0)
	d.SetAccepting(1, true)
	for _, sym := range in.Symbols() {
		to := 0
		if f.PlaceOf(in, sym) == idx {
			to = 1
		}
		d.SetTransition(0, sym, to)
		d.SetTransition(1, sym, to)
	}
	return d
}
