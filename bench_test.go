package msq

// Benchmark harness: one benchmark per experiment of DESIGN.md §3 (the
// regeneration of Table 2's complexity map). Absolute numbers depend on
// hardware; the experiments' claims are about *shape*: which parameters
// the running time is polynomial in, and which it is exponential in.
// cmd/msqexp prints the same series as human-readable tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"markovseq/internal/automata"
	"markovseq/internal/conf"
	"markovseq/internal/core"
	"markovseq/internal/enum"
	"markovseq/internal/markov"
	"markovseq/internal/ranked"
	"markovseq/internal/sproj"
	"markovseq/internal/transducer"
)

// benchNodes is the node alphabet used by the scaling benchmarks.
func benchNodes(k int) *automata.Alphabet {
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	return automata.MustAlphabet(names...)
}

// benchDetTransducer builds a deterministic transducer with nStates
// states over in, emitting 0 or 1 symbols per transition.
func benchDetTransducer(in, out *automata.Alphabet, nStates int, rng *rand.Rand) *transducer.Transducer {
	t := transducer.New(in, out, nStates, 0)
	for q := 0; q < nStates; q++ {
		t.SetAccepting(q, true)
		for _, s := range in.Symbols() {
			var e []automata.Symbol
			if rng.Intn(2) == 0 {
				e = []automata.Symbol{automata.Symbol(rng.Intn(out.Size()))}
			}
			t.AddTransition(q, s, rng.Intn(nStates), e)
		}
	}
	return t
}

// benchAnswer finds some answer of t over m (the E_max top), so that the
// confidence benchmarks measure a nonzero-work path.
func benchAnswer(t *transducer.Transducer, m *markov.Sequence) []automata.Symbol {
	o, _, ok := ranked.TopEmax(t, m, transducer.Unconstrained())
	if !ok {
		panic("bench: no answer")
	}
	return o
}

// --- T2.a: deterministic confidence (Theorem 4.6), scaling in n ---

func BenchmarkConfidenceDet(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			in := benchNodes(4)
			out := automata.MustAlphabet("x", "y")
			m := markov.Random(in, n, 0.6, rng)
			t := benchDetTransducer(in, out, 4, rng)
			o := benchAnswer(t, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				conf.Det(t, m, o)
			}
		})
	}
}

// --- T2.a (second bound): k-uniform deterministic fast path ---

func BenchmarkConfidenceDetUniform(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			in := benchNodes(4)
			out := automata.MustAlphabet("x", "y")
			t := transducer.New(in, out, 3, 0)
			for q := 0; q < 3; q++ {
				t.SetAccepting(q, true)
				for _, s := range in.Symbols() {
					t.AddTransition(q, s, rng.Intn(3),
						[]automata.Symbol{automata.Symbol(rng.Intn(out.Size()))})
				}
			}
			m := markov.Random(in, n, 0.6, rng)
			o := benchAnswer(t, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				conf.DetUniform(t, m, o)
			}
		})
	}
}

// --- T2.b: nondeterministic uniform confidence (Theorem 4.8),
// exponential in |Q|, linear in n ---

func BenchmarkConfidenceUniformNFA(b *testing.B) {
	for _, q := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("Q=%d", q), func(b *testing.B) {
			// The worst-case family ("(q-1)-th symbol from the end is a"),
			// whose subset construction genuinely needs 2^{q-1} states.
			t, m, o := benchUniformNFAWorstCase(q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				conf.Uniform(t, m, o)
			}
		})
	}
}

// --- T2.c: the brute-force possible-worlds oracle, exponential in n
// (the empirical face of FP^#P-hardness) ---

func BenchmarkConfidenceBruteForce(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			in := benchNodes(3)
			out := automata.MustAlphabet("x", "y")
			m := markov.Random(in, n, 0.6, rng)
			t := benchDetTransducer(in, out, 3, rng)
			o := benchAnswer(t, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				conf.BruteForce(t, m, o)
			}
		})
	}
}

// --- T2.d: s-projector confidence (Theorem 5.5), exponential only in
// |Q_E| ---

func benchSProjector(ab *automata.Alphabet, qb, qe int, rng *rand.Rand) *sproj.SProjector {
	mk := func(n int) *automata.DFA {
		d := automata.NewDFA(ab, n, 0)
		for q := 0; q < n; q++ {
			d.SetAccepting(q, rng.Intn(2) == 0)
			for _, s := range ab.Symbols() {
				d.SetTransition(q, s, rng.Intn(n))
			}
		}
		d.SetAccepting(0, true)
		return d
	}
	p, err := sproj.New(mk(qb), mk(3), mk(qe))
	if err != nil {
		panic(err)
	}
	return p
}

func BenchmarkConfidenceSProjQE(b *testing.B) {
	// Worst-case family: E = "length ≡ 0 (mod |Q_E|)", where the live
	// E-state subsets genuinely range over 2^{|Q_E|} values (see
	// cmd/msqexp's sproj-confidence experiment).
	ab := automata.MustAlphabet("a", "b", "c")
	for _, qe := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("QE=%d", qe), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			e := automata.NewDFA(ab, qe, 0)
			e.SetAccepting(0, true)
			for q := 0; q < qe; q++ {
				for _, s := range ab.Symbols() {
					e.SetTransition(q, s, (q+1)%qe)
				}
			}
			a := automata.NewDFA(ab, 3, 0)
			a.SetAccepting(1, true)
			for _, s := range ab.Symbols() {
				a.SetTransition(0, s, 1)
				a.SetTransition(1, s, 2)
				a.SetTransition(2, s, 2)
			}
			p, err := sproj.New(automata.Universal(ab), a, e)
			if err != nil {
				b.Fatal(err)
			}
			m := markov.Random(ab, 32, 0.9, rng)
			o := []automata.Symbol{0}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Confidence(m, o)
			}
		})
	}
}

func BenchmarkConfidenceSProjQB(b *testing.B) {
	ab := automata.MustAlphabet("a", "b", "c")
	for _, qb := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("QB=%d", qb), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			p := benchSProjector(ab, qb, 3, rng)
			m := markov.Random(ab, 32, 0.9, rng)
			o := []automata.Symbol{0, 1}
			if !p.A.Accepts(o) {
				o = nil
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Confidence(m, o)
			}
		})
	}
}

// --- T2.e: indexed s-projector confidence (Theorem 5.8), polynomial ---

func BenchmarkConfidenceIndexed(b *testing.B) {
	ab := automata.MustAlphabet("a", "b", "c")
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			p := benchSProjector(ab, 4, 4, rng)
			m := markov.Random(ab, n, 0.9, rng)
			o := []automata.Symbol{0, 1}
			if !p.A.Accepts(o) {
				o = nil
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.IndexedConfidence(m, o, n/2)
			}
		})
	}
}

// --- T2.f: unranked enumeration delay (Theorem 4.1) ---

func BenchmarkEnumUnranked(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			in := benchNodes(3)
			out := automata.MustAlphabet("x", "y")
			m := markov.Random(in, n, 0.7, rng)
			t := benchDetTransducer(in, out, 3, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := enum.NewEnumerator(t, m)
				for j := 0; j < 10; j++ {
					if _, ok := e.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// --- T2.g: ranked enumeration by E_max (Theorem 4.3) ---

func BenchmarkEnumEmax(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			in := benchNodes(3)
			out := automata.MustAlphabet("x", "y")
			m := markov.Random(in, n, 0.7, rng)
			t := benchDetTransducer(in, out, 3, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := ranked.NewEnumerator(t, m)
				for j := 0; j < 10; j++ {
					if _, ok := e.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// --- T2.i: indexed s-projector ranked enumeration (Theorem 5.7) ---

func BenchmarkEnumIndexed(b *testing.B) {
	ab := automata.MustAlphabet("a", "b", "c")
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(10))
			p := benchSProjector(ab, 3, 3, rng)
			m := markov.Random(ab, n, 0.8, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := p.EnumerateIndexed(m)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 10; j++ {
					if _, ok := e.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// --- T2.h: I_max enumeration for plain s-projectors (Theorem 5.2) ---

func BenchmarkEnumImax(b *testing.B) {
	ab := automata.MustAlphabet("a", "b", "c")
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			p := benchSProjector(ab, 3, 3, rng)
			m := markov.Random(ab, n, 0.8, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := p.EnumerateImax(m)
				for j := 0; j < 5; j++ {
					if _, ok := e.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// --- Top-answer primitive (the Viterbi-style optimizer) ---

func BenchmarkTopEmax(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(12))
			in := benchNodes(4)
			out := automata.MustAlphabet("x", "y")
			m := markov.Random(in, n, 0.6, rng)
			t := benchDetTransducer(in, out, 4, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ranked.TopEmax(t, m, transducer.Unconstrained())
			}
		})
	}
}

// --- End-to-end workloads: the motivating applications ---

func BenchmarkRFIDTopK(b *testing.B) {
	f := Hospital(4, 2)
	h := HospitalHMM(f, DefaultRFIDNoise)
	rng := rand.New(rand.NewSource(13))
	tr, err := SimulateRFID(h, 50, rng)
	if err != nil {
		b.Fatal(err)
	}
	q := PlaceTransducer(f, "lab")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(q, tr.Seq, 5)
	}
}

func BenchmarkTextExtraction(b *testing.B) {
	ab := TextAlphabet()
	rng := rand.New(rand.NewSource(14))
	doc := GenerateText(3, 6, 4, rng)
	m := NoisyText(ab, doc.Text, 0.05, rng)
	p := NameExtractor(ab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := p.EnumerateIndexed(m)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			if _, ok := e.Next(); !ok {
				break
			}
		}
	}
}

// --- Ablation A2: lazy vs dense subset DP for Theorem 4.8 ---

func benchUniformNFAWorstCase(q int) (*transducer.Transducer, *markov.Sequence, []automata.Symbol) {
	rng := rand.New(rand.NewSource(21))
	in := automata.MustAlphabet("a", "b")
	out := automata.MustAlphabet("x")
	x := []automata.Symbol{out.MustSymbol("x")}
	t := transducer.New(in, out, q, 0)
	t.SetAccepting(q-1, true)
	sa, sb := in.MustSymbol("a"), in.MustSymbol("b")
	t.AddTransition(0, sa, 0, x)
	t.AddTransition(0, sb, 0, x)
	t.AddTransition(0, sa, 1, x)
	for st := 1; st+1 < q; st++ {
		t.AddTransition(st, sa, st+1, x)
		t.AddTransition(st, sb, st+1, x)
	}
	m := markov.Random(in, 24, 1.0, rng)
	o, _, ok := ranked.TopEmax(t, m, transducer.Unconstrained())
	if !ok {
		panic("bench: no answer")
	}
	return t, m, o
}

func BenchmarkUniformLazyVsDense(b *testing.B) {
	for _, q := range []int{4, 8, 12} {
		t, m, o := benchUniformNFAWorstCase(q)
		b.Run(fmt.Sprintf("lazy/Q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conf.UniformLazy(t, m, o)
			}
		})
		b.Run(fmt.Sprintf("dense/Q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conf.UniformDense(t, m, o)
			}
		})
	}
}

// --- Ablation A4-adjacent: Lawler vs dedup I_max enumeration ---

func BenchmarkImaxLawlerVsDedup(b *testing.B) {
	ab := automata.MustAlphabet("a", "b", "c")
	rng := rand.New(rand.NewSource(22))
	p := benchSProjector(ab, 3, 3, rng)
	m := markov.Random(ab, 16, 0.8, rng)
	b.Run("lawler", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := p.EnumerateImax(m)
			for j := 0; j < 5; j++ {
				if _, ok := e.Next(); !ok {
					break
				}
			}
		}
	})
	b.Run("dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := p.EnumerateImaxDedup(m)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 5; j++ {
				if _, ok := e.Next(); !ok {
					break
				}
			}
		}
	})
}

// --- Monte Carlo estimation for the hard class ---

func BenchmarkEstimateConfidence(b *testing.B) {
	nodes := automata.MustAlphabet("a", "b")
	outs := automata.MustAlphabet("x")
	rng := rand.New(rand.NewSource(23))
	m := markov.Random(nodes, 32, 0.8, rng)
	t := transducer.New(nodes, outs, 2, 0)
	t.SetAccepting(0, true)
	t.SetAccepting(1, true)
	x := []automata.Symbol{outs.MustSymbol("x")}
	for _, s := range nodes.Symbols() {
		t.AddTransition(0, s, 0, x)
		t.AddTransition(0, s, 1, nil)
		t.AddTransition(1, s, 0, x)
	}
	o := make([]automata.Symbol, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conf.Estimate(t, m, o, 1000, rng)
	}
}

// --- Serving layer: the Lahar store's prepared-engine cache ---

// laharBenchWorkload builds the RFID hospital workload the serving-layer
// benchmarks share: a 50-step cart stream and the "visits the lab" place
// query.
func laharBenchWorkload(b *testing.B, seed int64) (*markov.Sequence, *transducer.Transducer) {
	return laharBenchWorkloadN(b, seed, 50)
}

// laharBenchWorkloadN is laharBenchWorkload with a chosen stream length.
func laharBenchWorkloadN(b *testing.B, seed int64, n int) (*markov.Sequence, *transducer.Transducer) {
	b.Helper()
	f := Hospital(4, 2)
	h := HospitalHMM(f, DefaultRFIDNoise)
	tr, err := SimulateRFID(h, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	return tr.Seq, PlaceTransducer(f, "lab")
}

// BenchmarkLaharTopKCold measures the pre-cache per-request cost: every
// query classifies the transducer, builds a fresh engine, and re-runs
// the ranked enumeration from scratch.
func BenchmarkLaharTopKCold(b *testing.B) {
	m, q := laharBenchWorkload(b, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.NewTransducerEngine(q, m)
		if err != nil {
			b.Fatal(err)
		}
		if len(eng.TopK(5)) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkLaharTopKCached measures the served path: the DB's
// prepared-engine cache plus the engine's memoized answer prefix turn a
// repeated top-k into a map lookup and an O(k) copy.
func BenchmarkLaharTopKCached(b *testing.B) {
	m, q := laharBenchWorkload(b, 31)
	db := NewDB()
	if err := db.PutStream("cart", m); err != nil {
		b.Fatal(err)
	}
	db.RegisterTransducer("lab", q)
	if _, err := db.TopK("cart", "lab", 5); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.TopK("cart", "lab", 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkSlidingTopK measures one cold sliding sweep per iteration on
// the ISSUE workload: RFID hospital, 200-step stream, window 8, stride
// 1, k = 3 (193 windows). "sweep" is the amortized path (zero-copy
// windows, operator gate, per-window sweeper), "reference" the
// bind-per-window baseline it must match bit for bit
// (TestSlidingSWAGMatchesReference), "sweep-parallel" the amortized path
// with window fan-out. PutStream before each iteration bumps the stream
// version, so no cached state survives between iterations and every
// sweep is evaluated cold.
func BenchmarkSlidingTopK(b *testing.B) {
	m, q := laharBenchWorkloadN(b, 32, 200)
	const window, stride, k = 8, 1, 3
	for _, mode := range []struct {
		name string
		opts []DBOption
	}{
		{"sweep", nil},
		{"sweep-parallel", []DBOption{WithParallelWindows(true)}},
		{"reference", []DBOption{WithReferenceWindows(true)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db := NewDB(mode.opts...)
			db.RegisterTransducer("lab", q)
			windows := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := db.PutStream("cart", m); err != nil { // cold: new stream version
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := db.SlidingTopK("cart", "lab", window, stride, k)
				if err != nil {
					b.Fatal(err)
				}
				windows = len(res)
			}
			b.ReportMetric(float64(windows)*float64(b.N)/b.Elapsed().Seconds(), "windows/sec")
		})
	}
}

// BenchmarkTopKAcrossParallel evaluates one query cold over a fleet of
// streams, varying the worker-pool size. PutStream before each
// iteration bumps every stream's version, dropping cached engines and
// memoized answers, so each iteration pays the full fan-out evaluation.
// Per-engine ranked enumeration stays sequential (the store's default
// rankedWorkers = 1), so the pool size is the only parallelism knob
// being measured. Note: on a single-CPU host the workers=4 and
// workers=max series cannot beat workers=1 — see EXPERIMENTS.md for the
// multi-core methodology.
func BenchmarkTopKAcrossParallel(b *testing.B) {
	const fleet = 16
	streams := make([]string, fleet)
	seqs := make([]*markov.Sequence, fleet)
	var q *transducer.Transducer
	for i := range streams {
		streams[i] = fmt.Sprintf("cart%d", i)
		seqs[i], q = laharBenchWorkload(b, int64(40+i))
	}
	for _, workers := range []int{1, 4, 0} { // 0 = GOMAXPROCS default
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			db := NewDB(WithDBWorkers(workers))
			db.RegisterTransducer("lab", q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j, s := range streams { // cold: drop cached engines
					if err := db.PutStream(s, seqs[j]); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if _, err := db.TopKAcross(streams, "lab", 5); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(fleet)*float64(b.N)/b.Elapsed().Seconds(), "streams/sec")
		})
	}
}

// --- Append-only ingestion: events/sec with resident window state ---

// appendBenchWorkload splits a 264-step RFID trace into a 200-event
// prefix and the 64 events that grow it back to full length, so both
// append benchmarks replay the identical event stream against the
// standing ISSUE query (window 8, stride 1, k = 3).
func appendBenchWorkload(b *testing.B) (*markov.Sequence, []Event, *transducer.Transducer) {
	b.Helper()
	const prefix, epoch = 200, 64
	full, q := laharBenchWorkloadN(b, 33, prefix+epoch)
	events := make([]Event, 0, epoch)
	for l := prefix; l < prefix+epoch; l++ {
		events = append(events, Event(full.TransAt(l)))
	}
	return full.Window(1, prefix), events, q
}

// BenchmarkAppendEvents measures the incremental ingestion path: a
// standing WatchSlidingTopK subscription holds its window state
// resident, each AppendEvents extends the cached engine in place
// (forward marginals and SWAG stacks grow by one position), and the
// subscriber reads exactly one fresh window delta per event. Setup —
// storing the prefix, registering the watcher, draining its catch-up
// deltas — runs outside the timer; the timed region is the steady
// state: one event in, one ranked delta out.
func BenchmarkAppendEvents(b *testing.B) {
	prefix, events, q := appendBenchWorkload(b)
	const window, stride, k = 8, 1, 3
	catchup := (prefix.Len()-window)/stride + 1
	db := NewDB()
	db.RegisterTransducer("lab", q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := db.PutStream("cart", prefix); err != nil {
			b.Fatal(err)
		}
		sub, err := db.WatchSlidingTopK("cart", "lab", window, stride, k)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < catchup; j++ {
			<-sub.C()
		}
		b.StartTimer()
		for _, ev := range events {
			if _, err := db.AppendEvents("cart", []Event{ev}); err != nil {
				b.Fatal(err)
			}
			d, ok := <-sub.C()
			if !ok {
				b.Fatal(sub.Err())
			}
			if len(d.Top) == 0 {
				b.Fatal("empty window delta")
			}
		}
		b.StopTimer()
		sub.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkAppendRebuild is the pre-append-API baseline: the only way
// to grow a stream was to PutStream a wholesale replacement (bumping
// the version and invalidating every cached engine), and the only way
// to keep a standing sliding query current was to re-run it over the
// whole stream after each replace. The grown snapshots are pre-built
// outside the timer, so the timed region is purely the serving cost
// the append path eliminates: replace + cold re-evaluation per event.
func BenchmarkAppendRebuild(b *testing.B) {
	const prefix, epoch = 200, 64
	full, q := laharBenchWorkloadN(b, 33, prefix+epoch)
	const window, stride, k = 8, 1, 3
	grown := make([]*markov.Sequence, epoch)
	for j := range grown {
		grown[j] = full.Window(1, prefix+j+1)
	}
	db := NewDB()
	db.RegisterTransducer("lab", q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range grown {
			if err := db.PutStream("cart", m); err != nil {
				b.Fatal(err)
			}
			res, err := db.SlidingTopK("cart", "lab", window, stride, k)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) == 0 {
				b.Fatal("no windows")
			}
		}
	}
	b.ReportMetric(float64(epoch)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
