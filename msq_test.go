package msq

import (
	"math"
	"math/rand"
	"testing"
)

// TestPaperRunningExample drives the whole public API through the paper's
// running example: Figure 1, Figure 2, Table 1's conf(12), Example 4.2's
// E_max, ranked and unranked enumeration, exact arithmetic.
func TestPaperRunningExample(t *testing.T) {
	nodes := PaperNodes()
	outs := PaperOutputs()
	m := PaperFigure1(nodes)
	q := PaperFigure2(nodes, outs)

	o12 := outs.MustParseString("1 2")
	c, err := Confidence(q, m, o12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.4038) > 1e-9 {
		t.Fatalf("conf(12) = %v, want 0.4038", c)
	}
	if got := math.Exp(Emax(q, m, o12)); math.Abs(got-0.3969) > 1e-9 {
		t.Fatalf("E_max(12) = %v, want 0.3969", got)
	}
	ev, _, ok := BestEvidence(q, m, o12)
	if !ok || nodes.FormatString(ev) != "r1a la la r1a r2a" {
		t.Fatalf("best evidence = %v", nodes.FormatString(ev))
	}
	if !IsAnswer(q, m, o12) || IsAnswer(q, m, outs.MustParseString("λ λ λ")) {
		t.Fatal("IsAnswer misbehaves")
	}

	top := TopK(q, m, 3)
	if len(top) != 3 || outs.FormatString(top[0].Output) != "12" {
		t.Fatalf("TopK = %v", top)
	}

	var count int
	e := EnumerateUnranked(q, m)
	for {
		if _, ok := e.Next(); !ok {
			break
		}
		count++
	}
	if count != 6 {
		t.Fatalf("unranked enumeration found %d answers, want 6", count)
	}

	ex := ExactFromFloat(m)
	rc := ConfidenceExact(q, ex, o12)
	if math.Abs(rc.Float64()-0.4038) > 1e-9 {
		t.Fatalf("exact conf = %v", rc)
	}
	if rc.String() == "" {
		t.Fatal("exact rendering empty")
	}
}

// TestConfidenceDispatch checks the Table 2 dispatch: deterministic →
// Theorem 4.6, uniform → Theorem 4.8, hard combination → error.
func TestConfidenceDispatch(t *testing.T) {
	in := MustAlphabet("a", "b")
	out := MustAlphabet("x")
	rng := rand.New(rand.NewSource(5))
	m := RandomSequence(in, 4, 0.8, rng)

	// Nondeterministic 1-uniform machine.
	nd := NewTransducer(in, out, 2, 0)
	nd.SetAccepting(0, true)
	nd.SetAccepting(1, true)
	x := []Symbol{out.MustSymbol("x")}
	for _, s := range in.Symbols() {
		nd.AddTransition(0, s, 0, x)
		nd.AddTransition(0, s, 1, x)
		nd.AddTransition(1, s, 0, x)
	}
	o := []Symbol{x[0], x[0], x[0], x[0]}
	got, err := Confidence(nd, m, o)
	if err != nil {
		t.Fatal(err)
	}
	want := ConfidenceBruteForce(nd, m, o)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("uniform dispatch: %v vs brute %v", got, want)
	}

	// Nondeterministic non-uniform: refused.
	hard := NewTransducer(in, out, 2, 0)
	hard.SetAccepting(0, true)
	hard.SetAccepting(1, true)
	for _, s := range in.Symbols() {
		hard.AddTransition(0, s, 0, x)
		hard.AddTransition(0, s, 1, nil)
		hard.AddTransition(1, s, 0, x)
	}
	if _, err := Confidence(hard, m, o); err == nil {
		t.Fatal("hard combination should be refused")
	}
}

// TestRegexAndSProjectorAPI exercises regex compilation and s-projector
// evaluation end to end on the noisy-text workload.
func TestRegexAndSProjectorAPI(t *testing.T) {
	ab := TextAlphabet()
	rng := rand.New(rand.NewSource(6))
	doc := GenerateText(1, 3, 3, rng)
	m := NoisyText(ab, doc.Text, 0.05, rng)
	p := NameExtractor(ab)

	name := TextString(ab, doc.Names[0])
	c := p.Confidence(m, name)
	if c <= 0 {
		t.Fatalf("true name confidence = %v", c)
	}
	im := p.Imax(m, name)
	n := float64(m.Len())
	if im > c+1e-12 || c > n*im+1e-9 {
		t.Fatalf("Proposition 5.9 violated: Imax=%v conf=%v n=%v", im, c, n)
	}
	// Indexed enumeration yields the true name's occurrence near the top.
	e, err := p.EnumerateIndexed(m)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := e.Next()
	if !ok {
		t.Fatal("indexed enumeration empty")
	}
	if a.Conf <= 0 {
		t.Fatal("top indexed answer has nonpositive confidence")
	}
	// Regex API.
	d, err := CompileRegexDFA("Name:", ab)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepts(TextString(ab, "Name:")) {
		t.Fatal("regex DFA misbehaves")
	}
	if _, err := CompileRegex("(", ab); err == nil {
		t.Fatal("bad pattern should fail")
	}
}

// TestRFIDWorkloadAPI drives the hospital simulator end to end.
func TestRFIDWorkloadAPI(t *testing.T) {
	f := Hospital(2, 2)
	h := HospitalHMM(f, DefaultRFIDNoise)
	rng := rand.New(rand.NewSource(7))
	tr, err := SimulateRFID(h, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := PlaceTransducer(f, "lab")
	top := TopK(q, tr.Seq, 5)
	if len(top) == 0 {
		t.Fatal("no answers on a 10-step hospital trace")
	}
	for i := 1; i < len(top); i++ {
		if top[i].LogEmax > top[i-1].LogEmax+1e-9 {
			t.Fatal("TopK not sorted")
		}
	}
}

// TestDBFacade exercises the Lahar-style DB through the facade.
func TestDBFacade(t *testing.T) {
	db := NewDB()
	nodes := PaperNodes()
	outs := PaperOutputs()
	if err := db.PutStream("cart", PaperFigure1(nodes)); err != nil {
		t.Fatal(err)
	}
	db.RegisterTransducer("places", PaperFigure2(nodes, outs))
	res, err := db.TopK("cart", "places", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || outs.FormatString(res[0].Output) != "12" {
		t.Fatalf("DB TopK = %v", res)
	}
}

// TestAmplifiedSequences checks ConcatSequences through the facade.
func TestAmplifiedSequences(t *testing.T) {
	nodes := PaperNodes()
	m := PaperFigure1(nodes)
	mm := ConcatSequences(m, m)
	if mm.Len() != 10 {
		t.Fatalf("concat length = %d", mm.Len())
	}
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestKOrderFacade drives the k-order API end to end: a second-order
// sequence lifted to first order, queried through the engine.
func TestKOrderFacade(t *testing.T) {
	nodes := MustAlphabet("a", "b")
	s := NewKOrderSequence(nodes, 2, 3)
	a, b := nodes.MustSymbol("a"), nodes.MustSymbol("b")
	s.Set(0, nil, []float64{1, 0})
	s.Set(1, []Symbol{a}, []float64{0.5, 0.5})
	// Second-order: after "aa" always b; after "ab" always a.
	s.Set(2, []Symbol{a, a}, []float64{0, 1})
	s.Set(2, []Symbol{a, b}, []float64{1, 0})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	l := s.Lift()
	// Query: copy transducer over the lifted nodes.
	out := MustAlphabet("A", "B")
	tr := NewTransducer(nodes, out, 1, 0)
	tr.SetAccepting(0, true)
	tr.AddTransition(0, a, 0, []Symbol{out.MustSymbol("A")})
	tr.AddTransition(0, b, 0, []Symbol{out.MustSymbol("B")})
	lt := l.LiftTransducer(tr)
	c, err := Confidence(lt, l.Seq, out.MustParseString("A A B"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("second-order conf(AAB) = %v, want 0.5", c)
	}
}

// TestEstimateFacade checks the Monte Carlo entry points.
func TestEstimateFacade(t *testing.T) {
	nodes := PaperNodes()
	outs := PaperOutputs()
	m := PaperFigure1(nodes)
	q := PaperFigure2(nodes, outs)
	o := outs.MustParseString("1 2")
	rng := rand.New(rand.NewSource(1))
	est := EstimateConfidence(q, m, o, SamplesFor(0.03, 0.01), rng)
	if math.Abs(est-0.4038) > 0.03 {
		t.Fatalf("estimate %v outside band", est)
	}
	// Membership primitive.
	s := nodes.MustParseString("r1a la la r1a r2a")
	if !TransducesInto(q, s, o) {
		t.Fatal("s must transduce into 12")
	}
	if TransducesInto(q, s, outs.MustParseString("2 1")) {
		t.Fatal("s must not transduce into 21")
	}
}

// TestEvidencesFacade checks the k-best evidence enumeration on the
// running example.
func TestEvidencesFacade(t *testing.T) {
	nodes := PaperNodes()
	outs := PaperOutputs()
	m := PaperFigure1(nodes)
	q := PaperFigure2(nodes, outs)
	e, err := Evidences(q, m, outs.MustParseString("1 2"))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	prev := math.Inf(1)
	for {
		w, lp, ok := e.Next()
		if !ok {
			break
		}
		count++
		if lp > prev+1e-9 {
			t.Fatal("evidence probabilities not non-increasing")
		}
		prev = lp
		if m.Prob(w) <= 0 {
			t.Fatal("evidence has zero probability")
		}
	}
	if count != 3 {
		t.Fatalf("answer 12 has %d evidences, want 3 (Table 1: s, t, u)", count)
	}
}

// TestFacadeConstructors covers the remaining facade entry points.
func TestFacadeConstructors(t *testing.T) {
	ab, err := NewAlphabet("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAlphabet("a", "a"); err == nil {
		t.Fatal("duplicate should fail")
	}
	u := UniformSequence(ab, 3)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	h := NewHMM(ab, ab)
	if h == nil {
		t.Fatal("NewHMM returned nil")
	}
	d, _ := CompileRegexDFA("a+", ab)
	sp := SimpleSProjector(d)
	eng, err := NewSProjectorEngine(sp, u, true)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Plan().Class != ClassIndexedSProjector {
		t.Fatalf("class = %v", eng.Plan().Class)
	}
	// EnumerateEmax over a tiny query.
	out := MustAlphabet("x")
	tr := NewTransducer(ab, out, 1, 0)
	tr.SetAccepting(0, true)
	tr.AddTransition(0, ab.MustSymbol("a"), 0, []Symbol{out.MustSymbol("x")})
	tr.AddTransition(0, ab.MustSymbol("b"), 0, nil)
	e := EnumerateEmax(tr, u)
	seen := 0
	prev := math.Inf(1)
	for {
		a, ok := e.Next()
		if !ok {
			break
		}
		if a.LogEmax > prev+1e-9 {
			t.Fatal("order violated")
		}
		prev = a.LogEmax
		seen++
	}
	if seen != 4 { // outputs ε, x, xx, xxx (count of a's)
		t.Fatalf("EnumerateEmax yielded %d answers, want 4", seen)
	}
}
