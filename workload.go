package msq

import (
	"math/big"
	"math/rand"

	"markovseq/internal/paperex"
	"markovseq/internal/rfid"
	"markovseq/internal/textgen"
)

// RatConfidence wraps an exact rational confidence value.
type RatConfidence struct {
	Rat *big.Rat
}

// Float64 returns the nearest float64.
func (r *RatConfidence) Float64() float64 {
	f, _ := r.Rat.Float64()
	return f
}

// String renders the exact rational.
func (r *RatConfidence) String() string { return r.Rat.RatString() }

// --- Paper running example (Figures 1 and 2) ---

// PaperNodes returns the node alphabet of the paper's Figure 1.
func PaperNodes() *Alphabet { return paperex.Nodes() }

// PaperOutputs returns the output alphabet of the paper's Figure 2.
func PaperOutputs() *Alphabet { return paperex.Outputs() }

// PaperFigure1 returns the hospital-cart Markov sequence of Figure 1.
func PaperFigure1(nodes *Alphabet) *Sequence { return paperex.Figure1(nodes) }

// PaperFigure2 returns the place-extraction transducer of Figure 2.
func PaperFigure2(nodes, outputs *Alphabet) *Transducer { return paperex.Figure2(nodes, outputs) }

// --- RFID hospital workload (the paper's motivating application) ---

// Floorplan is a hospital layout for the RFID simulator.
type Floorplan = rfid.Floorplan

// RFIDNoise parametrizes the simulated sensing model.
type RFIDNoise = rfid.Noise

// RFIDTrace is a simulated deployment trace: ground truth, readings, and
// the smoothed Markov sequence.
type RFIDTrace = rfid.Trace

// DefaultRFIDNoise is a moderately noisy deployment.
var DefaultRFIDNoise = rfid.DefaultNoise

// Hospital builds a floorplan with the given number of rooms (plus one
// lab and one hallway), each place having locsPerPlace sub-locations.
func Hospital(rooms, locsPerPlace int) *Floorplan { return rfid.Hospital(rooms, locsPerPlace) }

// HospitalHMM builds the movement/sensing HMM of a floorplan.
func HospitalHMM(f *Floorplan, noise RFIDNoise) *HMM { return rfid.BuildHMM(f, noise) }

// SimulateRFID runs the HMM for n steps and smooths the readings into a
// Markov sequence (the queryable artifact).
func SimulateRFID(h *HMM, n int, rng *rand.Rand) (*RFIDTrace, error) {
	return rfid.Simulate(h, n, rng)
}

// PlaceTransducer builds the Figure-2-style query over a floorplan: after
// the first visit to the trigger place, emit the place symbol whenever
// the transmitter enters a place.
func PlaceTransducer(f *Floorplan, trigger string) *Transducer {
	return rfid.PlaceTransducer(f, trigger)
}

// --- Noisy-text workload (Example 5.1) ---

// TextDocument is a generated ground-truth document with embedded
// "Name:<value>" records.
type TextDocument = textgen.Document

// TextAlphabet returns the character alphabet of the text workload.
func TextAlphabet() *Alphabet { return textgen.Alphabet() }

// GenerateText produces a document with the given number of name records.
func GenerateText(records, fillerLen, nameLen int, rng *rand.Rand) TextDocument {
	return textgen.Generate(records, fillerLen, nameLen, rng)
}

// NoisyText converts ground-truth text into a Markov sequence through a
// memoryless confusion channel (an OCR model).
func NoisyText(ab *Alphabet, text string, confusion float64, rng *rand.Rand) *Sequence {
	return textgen.Noisy(ab, text, confusion, rng)
}

// NameExtractor builds the Example 5.1 s-projector
// [.*Name:] [a-z]+ [\s.*] over the text alphabet.
func NameExtractor(ab *Alphabet) *SProjector { return textgen.NameExtractor(ab) }

// TextString converts text into a symbol string over the text alphabet.
func TextString(ab *Alphabet, text string) []Symbol { return textgen.ParseString(ab, text) }
