package msq

import (
	"math/rand"

	"markovseq/internal/conf"
	"markovseq/internal/core"
	"markovseq/internal/korder"
)

// Engine is a prepared query over one Markov sequence: it classifies the
// query against the paper's tractability map (Table 2), selects the
// algorithms, and exposes the choice as an explainable plan. Use it when
// evaluating the same query repeatedly or when the plan matters; the
// package-level functions (Confidence, TopK, …) are one-shot shortcuts.
type Engine = core.Engine

// Plan records an Engine's algorithm selection.
type Plan = core.Plan

// EngineAnswer is one Engine-evaluated answer.
type EngineAnswer = core.Answer

// Query classes (the columns of the paper's Table 2).
const (
	ClassMealy             = core.ClassMealy
	ClassDeterministic     = core.ClassDeterministic
	ClassUniform           = core.ClassUniform
	ClassGeneral           = core.ClassGeneral
	ClassSProjector        = core.ClassSProjector
	ClassIndexedSProjector = core.ClassIndexedSProjector
)

// NewEngine prepares a transducer query over a sequence.
func NewEngine(t *Transducer, m *Sequence) (*Engine, error) {
	return core.NewTransducerEngine(t, m)
}

// NewSProjectorEngine prepares an s-projector query; indexed selects the
// [B]↓A[E] semantics with exact confidence ranking.
func NewSProjectorEngine(p *SProjector, m *Sequence, indexed bool) (*Engine, error) {
	return core.NewSProjectorEngine(p, m, indexed)
}

// EstimateConfidence is the Monte Carlo estimator for the FP^#P-complete
// class (and a sanity check for every other class): it samples worlds and
// tests membership, giving an additive ±ε guarantee with probability 1−δ
// at SamplesFor(ε, δ) samples.
func EstimateConfidence(t *Transducer, m *Sequence, o []Symbol, samples int, rng *rand.Rand) float64 {
	return conf.Estimate(t, m, o, samples, rng)
}

// SamplesFor returns the Hoeffding sample count for additive error ε with
// confidence 1−δ.
func SamplesFor(eps, delta float64) int { return conf.SamplesFor(eps, delta) }

// TransducesInto reports whether s →[A^ω]→ o for an arbitrary transducer
// (polynomial even when confidence computation is hard).
func TransducesInto(t *Transducer, s, o []Symbol) bool { return conf.TransducesInto(t, s, o) }

// KOrderSequence is a k-order Markov sequence (footnote 3 of the paper:
// every result generalizes to fixed k via the first-order lifting).
type KOrderSequence = korder.Sequence

// LiftedSequence is the first-order reduction of a k-order sequence.
type LiftedSequence = korder.Lifted

// NewKOrderSequence returns an empty k-order sequence of the given order
// and length; fill the per-history distributions with Set, then Validate,
// then Lift to query it with the first-order machinery.
func NewKOrderSequence(nodes *Alphabet, order, n int) *KOrderSequence {
	return korder.New(nodes, order, n)
}
