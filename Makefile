# markovseq — reproduction of Kimelfeld & Ré, "Transducing Markov
# Sequences" (PODS 2010). Standard library only; Go ≥ 1.22.

GO ?= go

.PHONY: all build test race cover bench benchcmp bench-all bench-profile experiments examples fuzz fuzz-smoke slo slo-smoke verify clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target is the serving-layer gate: vet plus the full suite
# under the race detector (the lahar cache tests exercise concurrent
# TopK/TopKAcross/PutStream).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Sparse-vs-dense kernel benchmarks plus the serving-layer suite, with
# allocation counts, summarized into BENCH_conf.json (raw benchstat-
# compatible lines are preserved inside the JSON), followed by the
# ranked-enumeration delay suite (top-k, TTFA, per-answer delay
# percentiles; reference vs incremental vs parallel) into
# BENCH_ranked.json, and the cold sliding-window / fleet sweep (windows
# per second and streams per second land in each result's "extra" map)
# into BENCH_sliding.json, and the append-only ingestion pair
# (incremental AppendEvents + resident watcher vs wholesale
# PutStream-rebuild; events per second in "extra") into
# BENCH_append.json.
bench:
	$(GO) test -run '^$$' -bench 'Kernel|Lahar' -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH_conf.json
	$(GO) test -run '^$$' -bench 'Ranked' -benchmem ./internal/ranked/ | $(GO) run ./cmd/benchjson -o BENCH_ranked.json
	$(GO) test -run '^$$' -bench 'SlidingTopK|TopKAcross' -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_sliding.json
	$(GO) test -run '^$$' -bench 'Append' -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_append.json

# Diff two bench JSON files produced by `make bench`, failing on a >10%
# ns/op (or >15% Extra-metric) regression in the named hot benchmarks:
#
#   make benchcmp OLD=BENCH_sliding.base.json NEW=BENCH_sliding.json
#   make benchcmp OLD=BENCH_ranked.base.json NEW=BENCH_ranked.json MATCH=Ranked
OLD ?= BENCH_sliding.base.json
NEW ?= BENCH_sliding.json
MATCH ?= SlidingTopK|TopKAcross
benchcmp:
	$(GO) run ./cmd/benchcmp -old $(OLD) -new $(NEW) -threshold 10 -match '$(MATCH)'

# The end-to-end SLO harness (internal/slo, cmd/sloharness): open-loop
# load with fault injection against a live lahar store, gated on each
# scenario's error budget — exits non-zero when a budget burns. The full
# table drives ~2s per scenario; slo-smoke is the seconds-scale CI
# subset (sub-second runs, throughput floors un-gated). BENCH_slo.json
# uses the benchjson schema, so it flows through `make benchcmp`
# (MATCH=SLO) like any benchmark suite. See EXPERIMENTS.md "SLO
# methodology" for the open-loop rationale and 1-CPU caveats.
slo:
	$(GO) run ./cmd/sloharness -o BENCH_slo.json

slo-smoke:
	$(GO) run ./cmd/sloharness -smoke -o BENCH_slo.json

# The CI gate: vet + full race suite, a fuzz smoke pass, the SLO smoke
# gate (skippable with SKIP_SLO=1 on machines too noisy to trust
# latency budgets), and a benchmark-regression check for every pair
# with a committed baseline.
# Baselines are opt-in (rename a BENCH_<p>.json from a trusted run to
# BENCH_<p>.base.json) so a fresh checkout still verifies cleanly — but
# once a baseline exists the check is REQUIRED: a missing regenerated
# BENCH_<p>.json fails verify instead of silently skipping. Escape
# hatch for machines where running benchmarks is impractical (CI
# shards, qemu): SKIP_BENCHCMP=1 make verify.
verify: race fuzz-smoke
	@if [ "$(SKIP_SLO)" = "1" ]; then \
		echo "verify: SKIP_SLO=1; skipping the SLO smoke gate"; \
	else \
		$(MAKE) slo-smoke || exit 1; \
	fi
	@for p in sliding ranked slo; do \
		base=BENCH_$$p.base.json; new=BENCH_$$p.json; \
		case $$p in \
			sliding) match='SlidingTopK|TopKAcross';; \
			ranked)  match='Ranked';; \
			slo)     match='SLO';; \
		esac; \
		if [ ! -f $$base ]; then \
			echo "verify: no benchmark baseline ($$base); skipping benchcmp"; \
		elif [ "$(SKIP_BENCHCMP)" = "1" ]; then \
			echo "verify: SKIP_BENCHCMP=1; skipping benchcmp against $$base"; \
		elif [ ! -f $$new ]; then \
			echo "verify: $$base exists but $$new is missing; run 'make bench' first (or SKIP_BENCHCMP=1 to bypass)" >&2; \
			exit 1; \
		else \
			$(MAKE) benchcmp OLD=$$base NEW=$$new MATCH="$$match" || exit 1; \
		fi; \
	done

# CPU/heap profiles for the hot benchmark named in PROFILE_BENCH (one
# iteration count high enough for a stable profile), dropped under
# prof/ together with a pprof top-20 summary of each. This is the loop
# that drove the PR 8 checkpoint work: profile, read the top entries,
# attack the widest box, re-measure.
#
#   make bench-profile
#   make bench-profile PROFILE_BENCH=RankedExhaustive PROFILE_PKG=./internal/ranked/
PROFILE_BENCH ?= RankedPruned$$
PROFILE_PKG ?= ./internal/ranked/
bench-profile:
	mkdir -p prof
	$(GO) test -run '^$$' -bench '$(PROFILE_BENCH)' -benchmem \
		-cpuprofile prof/cpu.out -memprofile prof/mem.out \
		-o prof/bench.test $(PROFILE_PKG)
	$(GO) tool pprof -top -nodecount 20 prof/bench.test prof/cpu.out
	$(GO) tool pprof -top -nodecount 20 -sample_index=alloc_space prof/bench.test prof/mem.out

# The historical run-everything benchmark sweep (DESIGN.md §3 series).
bench-all:
	$(GO) test -bench . -benchmem ./...

# Regenerate every table and figure of the paper (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/msqexp

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hospital
	$(GO) run ./examples/textextract
	$(GO) run ./examples/speech
	$(GO) run ./examples/genome
	$(GO) run ./examples/monitoring

fuzz:
	$(GO) test ./internal/regex -fuzz FuzzCompile -fuzztime 30s
	$(GO) test ./internal/codec -fuzz FuzzDecodeSequence -fuzztime 30s
	$(GO) test ./internal/conf -fuzz FuzzSequenceValidate -fuzztime 30s
	$(GO) test ./internal/slo -fuzz FuzzSLOScenarioConfig -fuzztime 30s

# Quick per-target fuzz pass (a few seconds each; -run '^$$' skips the
# unit tests so each invocation is pure fuzzing) — cheap enough for CI.
fuzz-smoke:
	$(GO) test ./internal/regex -run '^$$' -fuzz FuzzCompile -fuzztime 3s
	$(GO) test ./internal/codec -run '^$$' -fuzz FuzzDecodeSequence -fuzztime 3s
	$(GO) test ./internal/conf -run '^$$' -fuzz FuzzSequenceValidate -fuzztime 3s
	$(GO) test ./internal/slo -run '^$$' -fuzz FuzzSLOScenarioConfig -fuzztime 3s

clean:
	$(GO) clean ./...
